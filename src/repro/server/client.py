"""Asyncio client for the KV server: pipelining, timeouts, retry, reconnect.

:class:`KVClient` keeps one TCP connection and correlates replies to
requests purely by order (the server answers strictly in arrival order).
Because each operation coroutine writes its request *before* awaiting its
reply future, running many operations concurrently — for example with
``asyncio.gather`` — pipelines them over the single connection::

    client = await KVClient.connect("127.0.0.1", port)
    await asyncio.gather(*(client.put(f"k{i}", "v") for i in range(64)))

Failure handling, from transient to terminal:

* A ``BUSY`` reply (admission control shedding a write while the engine
  is write-stopped) is retried transparently with jittered exponential
  backoff.
* A connection reset or EOF — including mid-pipeline, where every
  in-flight request fails with ``ConnectionError`` — triggers a bounded
  reconnect loop (``reconnect_retries`` attempts with jittered backoff)
  when the client was built via :meth:`connect`, after which the failed
  call is resent. **At-least-once caveat:** a write whose reply was lost
  to the reset may have committed before the crash; resending it applies
  it again. That is idempotent for PUT/DELETE but double-applies
  merge-style batches.
* ``retry_deadline_s`` bounds the *total* time one call spends across
  BUSY retries and reconnects; past it the last error surfaces.
* ``ERR UNAVAILABLE <shard>`` (a quarantined shard in degraded mode)
  raises :class:`UnavailableError` immediately — it is retryable *by the
  application* once the operator restores the shard, but the client does
  not spin on it because quarantine rarely clears within a backoff
  window. Every other ``ERR`` surfaces as :class:`ServerError` carrying
  the structured code.
* A reply timeout poisons the connection (ordering can no longer be
  trusted) and fails all in-flight requests; it is not auto-retried.
"""

from __future__ import annotations

import asyncio
import json
import random
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError
from ..errors import SnapshotExpiredError as _EngineSnapshotExpiredError
from ..errors import TxnConflictError as _EngineTxnConflictError
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BatchOp,
    FrameParser,
    ProtocolError,
    encode_batch,
    encode_message,
)


async def _open_connection(
    host: str, port: int, timeout_s: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """``asyncio.open_connection`` bounded by ``timeout_s``.

    A timed-out connect surfaces as :class:`ConnectionError` so every
    caller's existing connect-failure handling (reconnect budgets, the
    cluster client's failover grace and circuit breaker) applies to a
    blackholed address exactly as it does to a refused one.
    """
    try:
        return await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
    except asyncio.TimeoutError:
        raise ConnectionError(
            f"connect to {host}:{port} timed out after {timeout_s}s"
        ) from None


class ServerError(ReproError):
    """The server answered with a structured ``ERR code message`` reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message


class BusyError(ServerError):
    """The server kept answering ``BUSY`` past the retry budget.

    BUSY is the admission-control signal for the engine's write-stop
    state; it is always safe to retry later.
    """

    def __init__(self, message: str) -> None:
        super().__init__("BUSY", message)


class UnavailableError(ServerError):
    """The key's shard is quarantined (``ERR UNAVAILABLE <shard>``).

    Degraded-mode serving: the connection and every other shard keep
    working; only operations touching ``shard`` fail. Safe to retry once
    the shard is restored, but not auto-retried (quarantine clears on
    operator action, not within a backoff window).
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__("UNAVAILABLE", f"shard {shard}: {message}")
        self.shard = shard


class MovedError(ServerError):
    """The shard lives on another node (``ERR MOVED`` redirect).

    Cluster mode's routing signal, not a failure: the reply names the
    owning node's address and the cluster-map epoch it is based on, so
    the caller can retry immediately at ``host:port`` (and refresh its
    map when ``epoch`` is newer than its own). A plain :class:`KVClient`
    surfaces it — following redirects is the
    :class:`~repro.cluster.ClusterClient`'s job.
    """

    def __init__(
        self, shard: int, host: str, port: int, epoch: int, message: str
    ) -> None:
        super().__init__(
            "MOVED",
            f"shard {shard} moved to {host}:{port} (epoch {epoch})"
            + (f": {message}" if message else ""),
        )
        self.shard = shard
        self.host = host
        self.port = port
        self.epoch = epoch


class SnapshotExpiredError(ServerError, _EngineSnapshotExpiredError):
    """``ERR SNAPEXPIRED``: the snapshot's versions were reclaimed.

    Subclasses both :class:`ServerError` and the engine's
    :class:`repro.errors.SnapshotExpiredError`, so a caller holding
    either a local store or a remote client can catch the engine type
    and handle both identically: take a fresh snapshot and retry.
    """

    def __init__(self, message: str) -> None:
        super().__init__("SNAPEXPIRED", message)


class TxnError(ServerError, _EngineTxnConflictError):
    """``ERR TXN``: a transactional batch was rolled back before commit.

    All-or-nothing held: no shard applied any of the batch, so the
    whole MULTI can simply be resent. Subclasses the engine's
    :class:`repro.errors.TxnConflictError` for uniform handling.
    """

    def __init__(self, message: str) -> None:
        super().__init__("TXN", message)


class KVClient:
    """One pipelined connection to a :class:`~repro.server.KVServer`.

    Args:
        timeout_s: Per-request reply timeout; expiry poisons the
            connection (reply ordering is lost past a missing reply).
        max_busy_retries: BUSY replies absorbed per call before
            :class:`BusyError`.
        backoff_base_s / backoff_max_s: BUSY retry backoff window.
        reconnect_retries: Reconnect attempts per call after a
            connection reset/EOF (0 disables; reconnection also requires
            the client to have been built via :meth:`connect`, which
            records the address).
        reconnect_backoff_s: Base delay between reconnect attempts
            (jittered, doubled per attempt).
        connect_timeout_s: Bound on establishing the TCP connection, in
            :meth:`connect` and every reconnect. Without it a blackholed
            address (a partitioned node, a dropped SYN) hangs the
            connect for the kernel's SYN timeout — minutes — while the
            reply timeout never arms because no request was ever sent;
            with it the caller (and the cluster client's circuit
            breaker) sees a fast ``ConnectionError`` instead.
        retry_deadline_s: Wall-clock bound on one call's total retrying
            (BUSY + reconnect); ``None`` means bounded only by the retry
            counts.
        protocol_version: Wire protocol version to request via the
            ``HELLO`` handshake at connect time. The default ``1`` sends
            no handshake at all — the byte stream is identical to older
            clients — and leaves the v2 surface (:meth:`snapshot`,
            ``at=`` reads, :meth:`multi`) disabled. Pass ``2`` to
            negotiate the transactional protocol; the server answers
            with the highest version it speaks and
            :attr:`protocol_version` records the result.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout_s: float = 10.0,
        max_busy_retries: int = 8,
        backoff_base_s: float = 0.005,
        backoff_max_s: float = 0.25,
        reconnect_retries: int = 3,
        reconnect_backoff_s: float = 0.05,
        connect_timeout_s: float = 5.0,
        retry_deadline_s: Optional[float] = None,
        protocol_version: int = 1,
    ) -> None:
        self._reader = reader
        self._writer = writer
        #: The version negotiated with the server (1 until a HELLO ran).
        self.protocol_version = 1
        self._requested_version = protocol_version
        self.timeout_s = timeout_s
        self.max_busy_retries = max_busy_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.reconnect_retries = reconnect_retries
        self.reconnect_backoff_s = reconnect_backoff_s
        self.connect_timeout_s = connect_timeout_s
        self.retry_deadline_s = retry_deadline_s
        #: BUSY replies absorbed by the retry loop (observability).
        self.busy_retries = 0
        #: Successful reconnects performed by the retry loop.
        self.reconnects = 0
        self._address: Optional[Tuple[str, int]] = None
        self._closed = False
        self._reconnect_lock = asyncio.Lock()
        self._parser = FrameParser(MAX_FRAME_BYTES)
        #: FIFO of ``(reply_future, deadline, expected, accumulator)``;
        #: replies match by order. Single requests carry ``expected=1`` and
        #: no accumulator (the future resolves with the reply itself); a
        #: :meth:`request_many` window carries one entry for the whole
        #: window and accumulates its replies into the list.
        self._pending: Deque[
            Tuple[asyncio.Future, float, int, Optional[List[List[str]]]]
        ] = deque()
        #: One timer watching the *oldest* pending deadline, instead of
        #: one ``wait_for`` wrapper (a task plus a timer) per request —
        #: FIFO ordering means the head is always the first to expire.
        self._timeout_handle: Optional[asyncio.TimerHandle] = None
        self._broken: Optional[Exception] = None
        #: Write cork: frames written in one event-loop tick are coalesced
        #: into a single transport write (one ``send(2)`` per pipelined
        #: window instead of one per request). Flushed by a ``call_soon``
        #: callback, so ordering against the pending-reply queue holds.
        self._outbuf = bytearray()
        self._flush_scheduled = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, **options: object
    ) -> "KVClient":
        """Open a connection and return a ready client.

        Clients built this way remember the address and transparently
        reconnect after a connection reset (see the module docstring for
        the at-least-once caveat on resent writes).
        """
        timeout_s = float(options.get("connect_timeout_s", 5.0))  # type: ignore[arg-type]
        reader, writer = await _open_connection(host, port, timeout_s)
        client = cls(reader, writer, **options)  # type: ignore[arg-type]
        client._address = (host, port)
        if client._requested_version > 1:
            await client._handshake()
        return client

    async def close(self) -> None:
        """Close the connection; in-flight requests fail, no reconnect."""
        self._closed = True
        self._poison(ConnectionError("client closed"))
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "KVClient":
        return self

    async def __aexit__(self, *_exc_info: object) -> None:
        await self.close()

    # -- operations ---------------------------------------------------------

    async def ping(self) -> bool:
        """Round-trip liveness check."""
        return (await self._call(["PING"]))[0] == "PONG"

    async def get(self, key: str, at: Optional[object] = None) -> Optional[str]:
        """Point lookup; ``None`` when the key is absent.

        ``at=`` (a snapshot token from :meth:`snapshot`, or any object
        with a ``token`` attribute such as an engine ``Snapshot``) reads
        the key as of that snapshot instead of the latest version.
        """
        if at is None:
            request = ["GET", key]
        else:
            self._require_v2("get(at=...)")
            request = ["GET", key, "AT", self.at_token(at)]
        reply = await self._call(request)
        if reply[0] == "VALUE":
            return reply[1]
        if reply[0] == "NONE":
            return None
        raise ProtocolError(f"unexpected GET reply {reply[0]!r}")

    async def put(self, key: str, value: str) -> None:
        """Insert or update one key (retried on BUSY)."""
        await self._call(["PUT", key, value])

    async def delete(self, key: str) -> None:
        """Delete one key (retried on BUSY)."""
        await self._call(["DELETE", key])

    def request_nowait(self, fields: List[str]) -> "asyncio.Future":
        """Issue one raw request on the pipeline; return its reply future.

        The hot-path issue API: a plain synchronous call that queues the
        encoded frame on the write cork and registers a reply future — no
        per-request coroutine, task, or flow-control await. A window of
        these rides one transport write and one gather::

            futures = [client.request_nowait(["PUT", k, v]) for k, v in kvs]
            replies = await asyncio.gather(*futures)

        The future resolves with the raw reply fields (``["OK"]``,
        ``["BUSY", ...]``, ``["ERR", ...]``, ...) — unlike :meth:`put` /
        :meth:`get`, nothing is retried or raised for error replies, and
        transport backpressure is not awaited; callers that need those
        guarantees use the coroutine API. Raises the poisoning error
        immediately if the connection is already broken.
        """
        if self._broken is not None:
            raise self._broken
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((future, loop.time() + self.timeout_s, 1, None))
        if self._timeout_handle is None:
            self._arm_timeout()
        self._send_frame(encode_message(fields))
        return future

    def request_many(self, requests: List[List[str]]) -> "asyncio.Future":
        """Issue a whole pipelined window; one future for all its replies.

        The window-granular sibling of :meth:`request_nowait`: N requests
        ride one encoded buffer, one pending-queue entry, and one reply
        future that resolves to the N raw replies in request order. This
        is the cheapest way to drive a deep pipeline — per *window* cost
        replaces per *request* cost for the future, the timeout
        accounting, and the gather bookkeeping the caller no longer
        needs. Same contract as :meth:`request_nowait` otherwise: raw
        replies (BUSY/ERR included), no retries, no flow-control await.
        """
        if self._broken is not None:
            raise self._broken
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        if not requests:
            future.set_result([])
            return future
        self._pending.append(
            (future, loop.time() + self.timeout_s, len(requests), [])
        )
        if self._timeout_handle is None:
            self._arm_timeout()
        self._send_frame(
            b"".join(encode_message(fields) for fields in requests)
        )
        return future

    async def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        at: Optional[object] = None,
    ) -> List[Tuple[str, str]]:
        """Range lookup over ``[lo, hi)``; ``limit`` caps the result.

        ``at=`` scans as of a snapshot token (see :meth:`get`).
        """
        request = ["SCAN", lo, hi]
        if limit is not None:
            request.append(str(limit))
        if at is not None:
            self._require_v2("scan(at=...)")
            request.extend(("AT", self.at_token(at)))
        reply = await self._call(request)
        if reply[0] != "PAIRS" or len(reply) % 2 != 1:
            raise ProtocolError("malformed SCAN reply")
        return [
            (reply[index], reply[index + 1])
            for index in range(1, len(reply), 2)
        ]

    async def batch(self, ops: Iterable[BatchOp]) -> int:
        """Apply several writes as one request; returns the op count."""
        reply = await self._call(encode_batch(ops))
        return int(reply[1]) if len(reply) > 1 else 0

    # -- transactional / snapshot operations (protocol v2) -------------------

    async def hello(self, version: int = PROTOCOL_VERSION) -> int:
        """Negotiate the wire protocol version; returns the result.

        Usually implicit: ``connect(..., protocol_version=2)`` performs
        the handshake (and repeats it after every reconnect). Calling it
        directly upgrades a client built around an existing transport.
        """
        reply = await self._call(["HELLO", str(version)])
        if reply[0] != "HELLO" or len(reply) != 2:
            raise ProtocolError(f"unexpected HELLO reply {reply!r}")
        negotiated = int(reply[1])
        self.protocol_version = negotiated
        self._requested_version = max(self._requested_version, version)
        return negotiated

    async def snapshot(self) -> str:
        """Open a server-side snapshot; returns its token.

        The token names one consistent store-wide sequence point: pass
        it as ``at=`` to :meth:`get`/:meth:`scan` for repeatable reads,
        and release it with :meth:`end_snapshot` when done. The server
        also releases every snapshot a connection holds when the
        connection closes — but a *reconnect* builds a fresh connection,
        so tokens taken before a reset lose their pins and reads at them
        may raise :class:`SnapshotExpiredError` once the engine reclaims
        those versions.
        """
        self._require_v2("snapshot")
        reply = await self._call(["SNAP"])
        if reply[0] != "SNAP" or len(reply) != 2:
            raise ProtocolError(f"unexpected SNAP reply {reply!r}")
        return reply[1]

    async def end_snapshot(self, token: str) -> None:
        """Release a snapshot taken with :meth:`snapshot` (idempotent)."""
        self._require_v2("end_snapshot")
        await self._call(["SNAP.END", token])

    async def multi(self, ops: Iterable[BatchOp]) -> int:
        """Apply several writes as ONE atomic unit; returns the op count.

        Unlike :meth:`batch` — whose atomicity is per *shard* — a MULTI
        is all-or-nothing across the whole store: the server hands it to
        the engine as a single transactional ``write_batch`` (two-phase
        commit when it spans shards). ``ERR TXN`` (the batch rolled back
        before its commit point, nothing applied) surfaces as
        :class:`TxnError` and is safe to resend.
        """
        self._require_v2("multi")
        reply = await self._call(["MULTI"] + encode_batch(ops)[1:])
        return int(reply[1]) if len(reply) > 1 else 0

    def _require_v2(self, operation: str) -> None:
        if self.protocol_version < 2:
            raise ProtocolError(
                f"{operation}() needs protocol v2; connect with "
                f"protocol_version=2 (negotiated: {self.protocol_version})"
            )

    async def _handshake(self) -> None:
        """Run the HELLO exchange for the requested protocol version.

        Uses the raw request path (no BUSY/reconnect retry loop): the
        handshake runs inside connect/reconnect, where a failure should
        surface to the owning retry machinery, not start a nested one.
        """
        reply = await self._request(["HELLO", str(self._requested_version)])
        if reply[0] != "HELLO" or len(reply) != 2:
            raise ProtocolError(f"unexpected HELLO reply {reply!r}")
        self.protocol_version = int(reply[1])

    @staticmethod
    def at_token(at: object) -> str:
        """Coerce ``at=`` (a token string or a Snapshot handle) to a token."""
        if isinstance(at, str):
            return at
        token = getattr(at, "token", None)
        if not isinstance(token, str):
            raise ProtocolError(
                f"at= must be a snapshot token or handle, got {type(at)!r}"
            )
        return token

    async def command(self, fields: List[str]) -> List[str]:
        """Issue a raw request through the full retry machinery.

        Same BUSY/reconnect absorption and structured-ERR raising as the
        typed operations, for verbs without a dedicated method (the
        cluster layer's ``CLUSTER``/``MIGRATE``/``MIG.*`` traffic).
        Returns the raw reply fields.
        """
        return await self._call(fields)

    async def info(self) -> Dict[str, object]:
        """The server's INFO snapshot, parsed from JSON."""
        reply = await self._call(["INFO"])
        return json.loads(reply[1])

    async def health(self) -> Dict[str, object]:
        """The server's HEALTH payload (degraded-mode state), parsed."""
        reply = await self._call(["HEALTH"])
        return json.loads(reply[1])

    # -- plumbing -----------------------------------------------------------

    async def _call(self, fields: List[str]) -> List[str]:
        """Send a request; absorb BUSY and connection resets; raise ERR.

        One loop, two retry budgets: ``max_busy_retries`` BUSY replies
        and ``reconnect_retries`` reconnects, both additionally bounded
        by ``retry_deadline_s`` of total wall-clock time.
        """
        loop = asyncio.get_running_loop()
        deadline = (
            loop.time() + self.retry_deadline_s
            if self.retry_deadline_s is not None
            else None
        )
        busy_attempts = 0
        reconnect_attempts = 0
        busy_delay = self.backoff_base_s
        while True:
            try:
                reply = await self._request(fields)
            except asyncio.TimeoutError:
                raise  # connection poisoned; ordering lost, never resend
            except (ConnectionError, OSError) as exc:
                self._poison(exc)
                # The reconnect attempt itself may fail — during a full
                # server restart the listener is down, so open_connection
                # raises too. Each such failure consumes one attempt from
                # the same budget instead of aborting the call, so a
                # client outlives a restart as long as the listener is
                # back within its retry window.
                while True:
                    if (
                        self._closed
                        or self._address is None
                        or reconnect_attempts >= self.reconnect_retries
                    ):
                        raise
                    reconnect_attempts += 1
                    delay = self.reconnect_backoff_s * (
                        2 ** (reconnect_attempts - 1)
                    )
                    await self._backoff(delay, deadline, exc)
                    try:
                        await self._reconnect()
                    except (ConnectionError, OSError) as retry_exc:
                        exc = retry_exc
                        continue
                    break
                continue
            if reply[0] == "BUSY":
                self.busy_retries += 1
                busy_attempts += 1
                message = reply[1] if len(reply) > 1 else "busy"
                if busy_attempts > self.max_busy_retries:
                    raise BusyError(message)
                await self._backoff(busy_delay, deadline, BusyError(message))
                busy_delay = min(busy_delay * 2, self.backoff_max_s)
                continue
            if reply[0] == "ERR":
                code = reply[1] if len(reply) > 1 else "UNKNOWN"
                if code == "UNAVAILABLE" and len(reply) > 2:
                    try:
                        shard = int(reply[2])
                    except ValueError:
                        shard = -1
                    raise UnavailableError(
                        shard, reply[3] if len(reply) > 3 else ""
                    )
                if code == "MOVED" and len(reply) > 4:
                    raise self._parse_moved(reply)
                if code == "SNAPEXPIRED":
                    raise SnapshotExpiredError(
                        reply[2] if len(reply) > 2 else ""
                    )
                if code == "TXN":
                    raise TxnError(reply[2] if len(reply) > 2 else "")
                raise ServerError(code, reply[2] if len(reply) > 2 else "")
            return reply

    @staticmethod
    def _parse_moved(reply: List[str]) -> ServerError:
        """``["ERR","MOVED",shard,"host:port",epoch,detail...]`` →
        :class:`MovedError` (or a generic ``ServerError`` when the reply
        fields don't parse)."""
        try:
            shard = int(reply[2])
            host, _, port_text = reply[3].rpartition(":")
            port = int(port_text)
            epoch = int(reply[4])
        except (ValueError, IndexError):
            return ServerError("MOVED", " ".join(reply[2:]))
        return MovedError(
            shard, host, port, epoch, reply[5] if len(reply) > 5 else ""
        )

    @staticmethod
    async def _backoff(
        delay: float, deadline: Optional[float], error: Exception
    ) -> None:
        """Sleep ``delay`` plus jitter, or raise ``error`` past deadline."""
        loop = asyncio.get_running_loop()
        if deadline is not None and loop.time() + delay >= deadline:
            raise error
        await asyncio.sleep(delay + random.uniform(0, delay))

    async def _reconnect(self) -> None:
        """Replace the dead transport with a fresh connection.

        Serialized on a lock so concurrent pipelined calls that all hit
        the same reset perform one reconnect between them: the first
        caller rebuilds the transport, the rest see ``_broken is None``
        and simply resend on the new connection.
        """
        async with self._reconnect_lock:
            if self._closed:
                raise ConnectionError("client closed")
            if self._broken is None:
                return  # another caller already reconnected
            assert self._address is not None
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            reader, writer = await _open_connection(
                *self._address, self.connect_timeout_s
            )
            self._reader = reader
            self._writer = writer
            self._parser = FrameParser(MAX_FRAME_BYTES)
            self._pending = deque()  # poisoned futures have already failed
            self._outbuf.clear()  # corked frames belong to failed calls
            self._broken = None
            self.reconnects += 1
            self._read_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
            if self._requested_version > 1:
                # The server starts every connection at v1; renegotiate
                # so v2 calls keep working after the reset. Snapshots
                # taken on the dead connection lost their server-side
                # pins — reads at their tokens may now raise
                # SnapshotExpiredError once those versions are
                # reclaimed.
                self.protocol_version = 1
                await self._handshake()

    def _send_frame(self, data: bytes) -> None:
        """Queue one encoded frame on the write cork.

        The actual transport write happens in :meth:`_flush_outbuf` on the
        next loop iteration, so every request issued in the same tick — a
        pipelined ``asyncio.gather`` window, typically — rides one write.
        """
        self._outbuf += data
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_outbuf)

    def _flush_outbuf(self) -> None:
        self._flush_scheduled = False
        if not self._outbuf:
            return
        data = bytes(self._outbuf)
        self._outbuf.clear()
        if (
            self._closed
            or self._broken is not None
            or self._writer.is_closing()
        ):
            return  # the owning calls have already failed or are retrying
        self._writer.write(data)

    async def _request(self, fields: List[str]) -> List[str]:
        if self._broken is not None:
            raise self._broken
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((future, loop.time() + self.timeout_s, 1, None))
        if self._timeout_handle is None:
            self._arm_timeout()
        self._send_frame(encode_message(fields))
        await self._writer.drain()
        # On expiry the sweeper sets TimeoutError on the head future and
        # poisons the rest, matching the old per-request wait_for shape.
        return await future

    def _arm_timeout(self) -> None:
        """Schedule the sweeper for the oldest pending deadline."""
        if not self._pending:
            return
        loop = asyncio.get_running_loop()
        delay = self._pending[0][1] - loop.time()
        self._timeout_handle = loop.call_later(
            max(0.0, delay), self._on_timeout
        )

    def _on_timeout(self) -> None:
        self._timeout_handle = None
        if self._broken is not None or not self._pending:
            return
        head_future, deadline = self._pending[0][:2]
        if asyncio.get_running_loop().time() < deadline:
            self._arm_timeout()  # head changed since the timer was set
            return
        # Ordering is lost once a reply is missing: the overdue request
        # times out, everything behind it is poisoned.
        if not head_future.done():
            head_future.set_exception(asyncio.TimeoutError())
        self._poison(
            ConnectionError(
                f"no reply within {self.timeout_s}s; connection poisoned"
            )
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    self._poison(ConnectionError("server closed connection"))
                    return
                pending = self._pending
                for message in self._parser.feed(data):
                    if not pending:
                        continue
                    future, _deadline, expected, replies = pending[0]
                    if replies is None:
                        pending.popleft()
                        if not future.done():
                            future.set_result(message)
                        continue
                    replies.append(message)
                    if len(replies) == expected:
                        pending.popleft()
                        if not future.done():
                            future.set_result(replies)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # ProtocolError, ConnectionError, ...
            self._poison(exc)

    def _poison(self, exc: Exception) -> None:
        if self._broken is None:
            self._broken = exc
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None
        while self._pending:
            future = self._pending.popleft()[0]
            if not future.done():
                future.set_exception(exc)
