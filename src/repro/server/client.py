"""Asyncio client for the KV server: pipelining, timeouts, BUSY retry.

:class:`KVClient` keeps one TCP connection and correlates replies to
requests purely by order (the server answers strictly in arrival order).
Because each operation coroutine writes its request *before* awaiting its
reply future, running many operations concurrently — for example with
``asyncio.gather`` — pipelines them over the single connection::

    client = await KVClient.connect("127.0.0.1", port)
    await asyncio.gather(*(client.put(f"k{i}", "v") for i in range(64)))

A ``BUSY`` reply (the server's admission control shedding a write while
the engine is write-stopped) is retried transparently with exponential
backoff; every other ``ERR`` surfaces as :class:`ServerError` carrying the
structured code. A reply timeout poisons the connection (ordering can no
longer be trusted) and fails all in-flight requests.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError
from .protocol import (
    MAX_FRAME_BYTES,
    BatchOp,
    FrameParser,
    ProtocolError,
    encode_batch,
    encode_message,
)


class ServerError(ReproError):
    """The server answered with a structured ``ERR code message`` reply."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.detail = message


class BusyError(ServerError):
    """The server kept answering ``BUSY`` past the retry budget.

    BUSY is the admission-control signal for the engine's write-stop
    state; it is always safe to retry later.
    """

    def __init__(self, message: str) -> None:
        super().__init__("BUSY", message)


class KVClient:
    """One pipelined connection to a :class:`~repro.server.KVServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout_s: float = 10.0,
        max_busy_retries: int = 8,
        backoff_base_s: float = 0.005,
        backoff_max_s: float = 0.25,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.timeout_s = timeout_s
        self.max_busy_retries = max_busy_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        #: BUSY replies absorbed by the retry loop (observability).
        self.busy_retries = 0
        self._parser = FrameParser(MAX_FRAME_BYTES)
        self._pending: Deque[asyncio.Future] = deque()
        self._broken: Optional[Exception] = None
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, **options: object
    ) -> "KVClient":
        """Open a connection and return a ready client."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, **options)  # type: ignore[arg-type]

    async def close(self) -> None:
        """Close the connection; in-flight requests fail."""
        self._poison(ConnectionError("client closed"))
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "KVClient":
        return self

    async def __aexit__(self, *_exc_info: object) -> None:
        await self.close()

    # -- operations ---------------------------------------------------------

    async def ping(self) -> bool:
        """Round-trip liveness check."""
        return (await self._call(["PING"]))[0] == "PONG"

    async def get(self, key: str) -> Optional[str]:
        """Point lookup; ``None`` when the key is absent."""
        reply = await self._call(["GET", key])
        if reply[0] == "VALUE":
            return reply[1]
        if reply[0] == "NONE":
            return None
        raise ProtocolError(f"unexpected GET reply {reply[0]!r}")

    async def put(self, key: str, value: str) -> None:
        """Insert or update one key (retried on BUSY)."""
        await self._call(["PUT", key, value])

    async def delete(self, key: str) -> None:
        """Delete one key (retried on BUSY)."""
        await self._call(["DELETE", key])

    async def scan(
        self, lo: str, hi: str, limit: Optional[int] = None
    ) -> List[Tuple[str, str]]:
        """Range lookup over ``[lo, hi)``; ``limit`` caps the result."""
        request = ["SCAN", lo, hi]
        if limit is not None:
            request.append(str(limit))
        reply = await self._call(request)
        if reply[0] != "PAIRS" or len(reply) % 2 != 1:
            raise ProtocolError("malformed SCAN reply")
        return [
            (reply[index], reply[index + 1])
            for index in range(1, len(reply), 2)
        ]

    async def batch(self, ops: Iterable[BatchOp]) -> int:
        """Apply several writes as one request; returns the op count."""
        reply = await self._call(encode_batch(ops))
        return int(reply[1]) if len(reply) > 1 else 0

    async def info(self) -> Dict[str, object]:
        """The server's INFO snapshot, parsed from JSON."""
        reply = await self._call(["INFO"])
        return json.loads(reply[1])

    # -- plumbing -----------------------------------------------------------

    async def _call(self, fields: List[str]) -> List[str]:
        """Send a request; retry on BUSY; raise ServerError on ERR."""
        delay = self.backoff_base_s
        reply = ["BUSY", "never sent"]
        for attempt in range(self.max_busy_retries + 1):
            reply = await self._request(fields)
            if reply[0] != "BUSY":
                break
            self.busy_retries += 1
            if attempt == self.max_busy_retries:
                raise BusyError(reply[1] if len(reply) > 1 else "busy")
            await asyncio.sleep(delay)
            delay = min(delay * 2, self.backoff_max_s)
        if reply[0] == "ERR":
            code = reply[1] if len(reply) > 1 else "UNKNOWN"
            detail = reply[2] if len(reply) > 2 else ""
            raise ServerError(code, detail)
        return reply

    async def _request(self, fields: List[str]) -> List[str]:
        if self._broken is not None:
            raise self._broken
        future = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        self._writer.write(encode_message(fields))
        await self._writer.drain()
        try:
            return await asyncio.wait_for(future, self.timeout_s)
        except asyncio.TimeoutError:
            # Ordering is lost once a reply is missing: poison everything.
            self._poison(
                ConnectionError(
                    f"no reply within {self.timeout_s}s; connection poisoned"
                )
            )
            raise

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    self._poison(ConnectionError("server closed connection"))
                    return
                for message in self._parser.feed(data):
                    if self._pending:
                        future = self._pending.popleft()
                        if not future.done():
                            future.set_result(message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # ProtocolError, ConnectionError, ...
            self._poison(exc)

    def _poison(self, exc: Exception) -> None:
        if self._broken is None:
            self._broken = exc
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(exc)
