"""Asyncio TCP front-end for any KV store: pipelining, parallel group
commit, admission control.

This is the process boundary the ROADMAP's "serving heavy traffic" goal
needs: a :class:`KVServer` owns any :class:`~repro.api.KVStore` — a single
:class:`~repro.core.tree.LSMTree` (typically in ``background_mode``), a
:class:`~repro.partition.PartitionedStore`, or a
:class:`~repro.shard.ShardedStore` — and speaks the length-prefixed
protocol of :mod:`repro.server.protocol` to any number of concurrent
connections.

Three serving-layer mechanisms do the heavy lifting:

* **Pipelining** — each connection's requests are decoded incrementally
  and answered strictly in arrival order, so clients may write many
  requests before reading the first reply. Ordering is per-connection;
  different connections interleave freely.
* **Parallel group commit** — writes (PUT/DELETE/BATCH) from all
  connections are coalesced into shared
  :meth:`~repro.api.KVStore.write_batch` calls: one write-mutex
  acquisition and one WAL flush for N client writes (Luo & Carey's
  ingestion-batching observation applied at the serving boundary). When
  the store is sharded (it exposes ``num_shards``/``shard_index``), the
  server runs **one committer per shard**: each write is routed to its
  shard's committer, so different shards' commits — including their WAL
  fsyncs — are in flight simultaneously instead of serializing on one
  commit pipeline.
* **Admission control** — before a write is admitted the server consults
  :meth:`~repro.api.KVStore.backpressure`: the *slowdown* state delays
  the reply (client-visible pushback that costs no thread), and the
  *stop* state is converted into a retryable ``BUSY`` reply instead of
  parking an executor thread on the engine's stall condition. Connection
  count and per-request frame size are bounded the same way.

Engine calls run on a bounded thread-pool executor so the event loop
never blocks on storage work; a failing background flush/compaction
surfaces as a structured ``ERR BACKGROUND`` reply (the store stays
readable), never as a hung or dropped connection.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..api import KVStore, Snapshot
from ..errors import (
    BackgroundError,
    ClosedError,
    ReplicationError,
    ShardUnavailableError,
    SnapshotExpiredError,
    TxnConflictError,
)
from .metrics import ServerMetrics
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    BatchOp,
    FrameParser,
    ProtocolError,
    decode_batch,
    encode_message,
    encode_messages,
)

#: Verbs the in-order dispatcher treats as writes (group-commit eligible).
#: ``MULTI`` is deliberately absent: its store-wide atomicity contract
#: must reach the engine as one ``write_batch`` call, never folded into a
#: shared group-commit window or split across per-shard committers.
_WRITE_VERBS = ("PUT", "DELETE", "BATCH")

#: Verbs (and the ``AT`` read suffix) gated behind a ``HELLO`` handshake
#: negotiating protocol version >= 2.
_V2_VERBS = ("SNAP", "SNAP.END", "MULTI")

#: Ceiling on snapshots held open per connection: each pins engine-side
#: versions, so an unbounded registry would let one client pin memory
#: without limit.
_MAX_SNAPSHOTS_PER_CONN = 64


class _ConnState:
    """Per-connection protocol state: negotiated version + live snapshots.

    A connection starts at protocol version 1 (the pre-``HELLO`` verb
    set) and upgrades via ``HELLO``. ``snapshots`` maps each token issued
    by this connection's ``SNAP`` to its engine handle; the handles are
    released on ``SNAP.END`` or when the connection closes.
    """

    __slots__ = ("protocol_version", "snapshots")

    def __init__(self) -> None:
        self.protocol_version = 1
        self.snapshots: Dict[str, Snapshot] = {}

    def close_snapshots(self) -> None:
        for snapshot in self.snapshots.values():
            try:
                snapshot.close()
            except Exception:
                pass  # a dying engine's pins die with it
        self.snapshots.clear()

#: Transport write-buffer high-water mark. Raised above asyncio's 64 KiB
#: default so a burst of coalesced pipelined replies does not flap the
#: flow-control pause/resume machinery.
_WRITE_BUFFER_HIGH = 256 * 1024


def maybe_install_uvloop(force: Optional[bool] = None) -> bool:
    """Install uvloop's event-loop policy when opted in and available.

    Opt-in because uvloop is an optional dependency: ``force=True`` (the
    ``--uvloop`` CLI flag) or ``REPRO_UVLOOP=1`` requests it; when the
    import fails the stock asyncio loop is silently kept, so the fast
    path degrades instead of breaking environments without the wheel.
    Returns whether uvloop is now the active policy. Call before the
    event loop is created (e.g. before ``asyncio.run``).
    """
    if force is None:
        force = os.environ.get("REPRO_UVLOOP", "") not in ("", "0")
    if not force:
        return False
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def tune_transport(writer: asyncio.StreamWriter) -> None:
    """Apply hot-path socket/transport tuning to one connection.

    ``TCP_NODELAY`` disables Nagle so a coalesced reply burst leaves
    immediately (asyncio enables it by default for TCP since 3.6; set
    explicitly so the guarantee does not depend on loop implementation),
    and the write-buffer high-water mark is raised so pipelined reply
    bursts don't bounce off flow control.
    """
    transport = writer.transport
    sock = transport.get_extra_info("socket")
    if sock is not None and sock.family in (socket.AF_INET, socket.AF_INET6):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
    try:
        transport.set_write_buffer_limits(high=_WRITE_BUFFER_HIGH)
    except (NotImplementedError, RuntimeError):
        pass


class _GroupCommitter:
    """Coalesces concurrent write submissions into engine batch commits.

    Connections submit ``(ops, future)`` pairs; a single drain task folds
    everything queued at that moment into one
    :meth:`~repro.api.KVStore.write_batch` call on the executor and
    resolves every submitter's future with the outcome. While one commit
    is on the executor, new submissions pile up and ride the next commit
    — exactly the classic group-commit window, sized by load instead of
    by a timer.

    A sharded server runs one committer per shard (every op a committer
    sees belongs to its shard), so the per-shard commit pipelines proceed
    in parallel while each stays a serial group-commit window.
    """

    def __init__(
        self,
        store: KVStore,
        executor: ThreadPoolExecutor,
        metrics: ServerMetrics,
        max_ops_per_commit: int,
    ) -> None:
        self._store = store
        self._executor = executor
        self._metrics = metrics
        self._max_ops = max_ops_per_commit
        self._queue: Deque[Tuple[List[BatchOp], asyncio.Future]] = deque()
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        """Spawn the drain task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Cancel the drain task, failing any not-yet-committed writes."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        while self._queue:
            _, future = self._queue.popleft()
            if not future.done():
                future.set_exception(ClosedError("server is shutting down"))

    def submit_nowait(self, ops: List[BatchOp]) -> asyncio.Future:
        """Queue ``ops``; the returned future resolves when durable.

        Returning the bare future (instead of a coroutine) lets callers
        gather a pipelined window without creating one task per request.
        """
        future = asyncio.get_running_loop().create_future()
        self._queue.append((ops, future))
        self._wakeup.set()
        return future

    async def submit(self, ops: List[BatchOp]) -> None:
        """Queue ``ops`` for the next commit; resolves when durable."""
        await self.submit_nowait(ops)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._queue:
                batch: List[Tuple[List[BatchOp], asyncio.Future]] = []
                ops: List[BatchOp] = []
                while self._queue and len(ops) < self._max_ops:
                    sub_ops, future = self._queue.popleft()
                    batch.append((sub_ops, future))
                    ops.extend(sub_ops)
                try:
                    await loop.run_in_executor(
                        self._executor, self._store.write_batch, ops
                    )
                except Exception as exc:  # surfaced per submitter
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(exc)
                else:
                    self._metrics.group_commits += 1
                    self._metrics.group_committed_ops += len(ops)
                    for _, future in batch:
                        if not future.done():
                            future.set_result(None)


class KVServer:
    """An asyncio TCP server fronting any :class:`~repro.api.KVStore`.

    Args:
        store: The engine to serve — an ``LSMTree``, ``PartitionedStore``,
            ``ShardedStore``, or anything else satisfying the protocol.
            When the store is sharded (exposes ``num_shards`` and
            ``shard_index``), group commit runs one committer per shard so
            commits on different shards proceed in parallel. The server
            does *not* close the store unless ``owns_tree=True`` (the CLI
            sets that).
        host / port: Bind address; ``port=0`` picks a free port, readable
            from :attr:`port` after :meth:`start`.
        max_connections: Connections beyond this are answered with one
            ``ERR MAXCONN`` frame and closed immediately.
        max_request_bytes: Per-request frame-size ceiling; an oversized
            frame gets ``ERR PROTOCOL`` and the connection is closed
            (framing cannot be trusted past that point).
        executor_threads: Bound on concurrent engine calls. ``None``
            (default) sizes it to ``max(4, num_shards)`` so every shard's
            commit can be in flight at once.
        group_commit: Coalesce concurrent writes into shared engine
            commits (on by default; off = one engine call per request,
            the contrast ``bench_e22`` measures).
        group_commit_max_ops: Cap on client ops folded into one commit.
        slowdown_delay_s: Reply delay applied per write while the engine
            reports the *slowdown* state.
        owns_tree: Close the store on :meth:`stop`.
    """

    def __init__(
        self,
        store: KVStore,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 128,
        max_request_bytes: int = MAX_FRAME_BYTES,
        executor_threads: Optional[int] = None,
        group_commit: bool = True,
        group_commit_max_ops: int = 512,
        slowdown_delay_s: float = 0.002,
        owns_tree: bool = False,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_request_bytes = max_request_bytes
        self.group_commit = group_commit
        self.slowdown_delay_s = slowdown_delay_s
        self.metrics = ServerMetrics()
        self._owns_tree = owns_tree
        #: One committer per shard when the store routes by shard; a
        #: single committer (index 0) otherwise.
        self._shard_index: Optional[Callable[[str], int]] = getattr(
            store, "shard_index", None
        )
        num_committers = (
            int(getattr(store, "num_shards", 1))
            if self._shard_index is not None
            else 1
        )
        if executor_threads is None:
            executor_threads = max(4, num_committers)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="kv-engine"
        )
        self._committers = [
            _GroupCommitter(
                store, self._executor, self.metrics, group_commit_max_ops
            )
            for _ in range(num_committers)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._started_at = time.time()

    @property
    def tree(self) -> KVStore:
        """Backward-compatible alias for :attr:`store`."""
        return self.store

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self.group_commit:
            for committer in self._committers:
                committer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close live connections, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for committer in self._committers:
            await committer.stop()
        for writer in list(self._writers):
            writer.close()
        for writer in list(self._writers):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._writers.clear()
        self._executor.shutdown(wait=True)
        if self._owns_tree:
            self.store.close()

    async def serve_forever(self) -> None:
        """Block until the server is cancelled (CLI entry point)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if len(self._writers) >= self.max_connections:
            self.metrics.connections_rejected += 1
            writer.write(
                encode_message(
                    ["ERR", "MAXCONN", "connection limit reached; retry later"]
                )
            )
            await self._close_writer(writer)
            return
        self._writers.add(writer)
        self.metrics.connection_opened()
        tune_transport(writer)
        parser = FrameParser(self.max_request_bytes)
        pending: Deque[List[str]] = deque()
        conn = _ConnState()
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                try:
                    pending.extend(parser.feed(data))
                except ProtocolError as exc:
                    self.metrics.protocol_errors += 1
                    writer.write(
                        encode_message(["ERR", "PROTOCOL", str(exc)])
                    )
                    await writer.drain()
                    break
                # Reply cork: everything this chunk's requests produce is
                # written as one buffer — one send(2) per pipelined run.
                replies: List[List[str]] = []
                while pending:
                    await self._serve_next(conn, pending, replies)
                if replies:
                    writer.write(encode_messages(replies))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.close_snapshots()
            self.metrics.connection_closed()
            self._writers.discard(writer)
            await self._close_writer(writer)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _serve_next(
        self,
        conn: _ConnState,
        pending: Deque[List[str]],
        replies: List[List[str]],
    ) -> None:
        """Answer the head request into ``replies``; coalesce a run of
        pipelined writes into one dispatch."""
        if pending[0] and pending[0][0] in _WRITE_VERBS:
            run: List[List[str]] = []
            while (
                pending
                and pending[0]
                and pending[0][0] in _WRITE_VERBS
            ):
                run.append(pending.popleft())
            replies.extend(await self._dispatch_writes(run))
            return
        request = pending.popleft()
        if request and request[0] == "MULTI":
            replies.append(await self._dispatch_multi(conn, request))
            return
        replies.append(await self._dispatch_read(request, conn))

    # -- write path ---------------------------------------------------------

    async def _dispatch_writes(
        self, requests: List[List[str]]
    ) -> List[List[str]]:
        """Admit, commit, and answer a run of pipelined write requests."""
        started = time.perf_counter()
        parsed: List[List[BatchOp]] = []
        for request in requests:
            try:
                parsed.append(self._parse_write(request))
            except (ProtocolError, ValueError) as exc:
                # A malformed write poisons the whole coalesced run; fall
                # back to answering each request individually so only the
                # bad one errors.
                if len(requests) > 1:
                    replies = []
                    for single in requests:
                        replies.extend(await self._dispatch_writes([single]))
                    return replies
                self.metrics.errors_total += 1
                return [["ERR", "BADREQ", str(exc)]]

        busy = self._admission_check()
        if busy is not None:
            self.metrics.busy_rejections += len(requests)
            return [list(busy) for _ in requests]
        if await self._apply_slowdown():
            self.metrics.slowdown_delays += len(requests)

        # Per-request fault isolation: each request commits (and fails)
        # on its own, so one quarantined shard errors only the writes
        # that touch it — the requests next to them in the pipeline
        # still succeed. Group commit still coalesces: all submissions
        # below enter the committer queues before the drain task runs.
        outcomes: List[Optional[BaseException]]
        if self.group_commit and len(self._committers) == 1:
            # Single committer: the drain loop folds every submission in
            # this run into one commit and resolves them all with the
            # same outcome, so one combined submission (one future, no
            # gather) is behaviorally identical and much cheaper.
            combined: List[BatchOp] = []
            for sub_ops in parsed:
                combined.extend(sub_ops)
            try:
                await self._committers[0].submit_nowait(combined)
            except Exception as exc:
                outcomes = [exc] * len(parsed)
            else:
                outcomes = [None] * len(parsed)
        elif self.group_commit:
            raw = await asyncio.gather(
                *(self._submit_grouped(sub_ops) for sub_ops in parsed),
                return_exceptions=True,
            )
            outcomes = [
                result if isinstance(result, BaseException) else None
                for result in raw
            ]
        else:
            # Per-request commit: one engine call — one write-mutex
            # acquisition and one WAL sync — per client request, the
            # baseline bench_e22 contrasts group commit against.
            loop = asyncio.get_running_loop()
            outcomes = []
            for sub_ops in parsed:
                try:
                    await loop.run_in_executor(
                        self._executor, self.store.write_batch, sub_ops
                    )
                except Exception as exc:
                    outcomes.append(exc)
                else:
                    outcomes.append(None)

        micros = (time.perf_counter() - started) * 1e6
        replies: List[List[str]] = []
        for request, sub_ops, outcome in zip(requests, parsed, outcomes):
            verb = request[0]
            if outcome is not None:
                self.metrics.errors_total += 1
                replies.append(self._error_reply(outcome))
                continue
            self.metrics.record_op(verb, micros)
            replies.append(
                ["OK", str(len(sub_ops))] if verb == "BATCH" else ["OK"]
            )
        return replies

    def _submit_grouped(self, ops: List[BatchOp]) -> "asyncio.Future":
        """Route ops to their shards' committers; resolve when committed.

        Non-sharded stores have exactly one committer, so this degenerates
        to the classic single group-commit pipeline. For sharded stores
        each sub-list rides its own shard's commit window — the windows
        fill and drain concurrently, which is where the write parallelism
        of ``bench_e23`` comes from. A multi-shard client batch resolves
        when *all* its sub-commits have settled; per-shard atomicity is
        the store's documented contract.

        Returns an awaitable future rather than running as a coroutine:
        the write dispatcher gathers one of these per pipelined request,
        and futures ride the gather without a task apiece.
        """
        if len(self._committers) == 1 or self._shard_index is None:
            return self._committers[0].submit_nowait(ops)
        by_shard: Dict[int, List[BatchOp]] = {}
        for op in ops:
            by_shard.setdefault(self._shard_index(op[1]), []).append(op)
        if len(by_shard) == 1:
            index, sub_ops = next(iter(by_shard.items()))
            return self._committers[index].submit_nowait(sub_ops)
        return asyncio.gather(
            *(
                self._committers[index].submit_nowait(sub_ops)
                for index, sub_ops in by_shard.items()
            )
        )

    @staticmethod
    def _parse_write(request: Sequence[str]) -> List[BatchOp]:
        verb = request[0]
        if verb == "PUT":
            if len(request) != 3:
                raise ProtocolError("PUT needs exactly a key and a value")
            return [("put", request[1], request[2])]
        if verb == "DELETE":
            if len(request) != 2:
                raise ProtocolError("DELETE needs exactly a key")
            return [("delete", request[1], None)]
        return decode_batch(request)

    def _admission_check(self) -> Optional[List[str]]:
        """BUSY reply if the engine is write-stopped, else ``None``.

        For sharded stores the check is conservative: the aggregate state
        is the worst shard's, so one write-stopped shard sheds writes for
        all — the simple policy that can never admit a write its shard
        cannot take.
        """
        state = self.store.backpressure()
        if state["state"] != "stop":
            return None
        return [
            "BUSY",
            "engine write-stopped "
            f"(level0_runs={state['level0_runs']}, "
            f"immutable_buffers={state['immutable_buffers']}); retry",
        ]

    async def _apply_slowdown(self) -> bool:
        """Delay the reply while the engine reports the slowdown state."""
        if self.slowdown_delay_s <= 0:
            return False
        if self.store.backpressure()["state"] != "slowdown":
            return False
        await asyncio.sleep(self.slowdown_delay_s)
        return True

    # -- transactional write path (v2) --------------------------------------

    async def _dispatch_multi(
        self, conn: _ConnState, request: List[str]
    ) -> List[str]:
        """Answer one ``MULTI`` request: a store-wide atomic batch.

        Deliberately bypasses the group committers: the whole batch must
        reach the engine as a single ``write_batch`` call so its
        atomicity contract (two-phase commit when it spans shards) holds,
        and that call runs on one executor thread end to end — the 2PC
        coordinator holds reentrant shard mutexes across the
        prepare→commit window, so the protocol is thread-affine.
        """
        started = time.perf_counter()
        if conn.protocol_version < 2:
            self.metrics.errors_total += 1
            return [
                "ERR",
                "BADREQ",
                "MULTI requires protocol version 2; send HELLO 2 first",
            ]
        try:
            ops = decode_batch(request)
        except ProtocolError as exc:
            self.metrics.errors_total += 1
            return ["ERR", "BADREQ", str(exc)]
        busy = self._admission_check()
        if busy is not None:
            self.metrics.busy_rejections += 1
            return list(busy)
        if await self._apply_slowdown():
            self.metrics.slowdown_delays += 1
        try:
            await self._run_engine(self.store.write_batch, ops)
        except Exception as exc:
            self.metrics.errors_total += 1
            return self._error_reply(exc)
        self.metrics.record_op(
            "MULTI", (time.perf_counter() - started) * 1e6
        )
        return ["OK", str(len(ops))]

    # -- read path ----------------------------------------------------------

    @staticmethod
    def _require_v2(conn: Optional[_ConnState], verb: str) -> None:
        if conn is None or conn.protocol_version < 2:
            raise ProtocolError(
                f"{verb} requires protocol version 2; send HELLO 2 first"
            )

    async def _dispatch_read(
        self, request: List[str], conn: Optional[_ConnState] = None
    ) -> List[str]:
        started = time.perf_counter()
        verb = request[0]
        try:
            if verb == "PING":
                reply = ["PONG"]
            elif verb == "HELLO":
                if len(request) != 2:
                    raise ProtocolError("HELLO needs exactly a version")
                try:
                    requested = int(request[1])
                except ValueError:
                    raise ProtocolError(
                        "HELLO version must be an integer"
                    ) from None
                if requested < 1:
                    raise ProtocolError("HELLO version must be >= 1")
                negotiated = min(requested, PROTOCOL_VERSION)
                if conn is not None:
                    conn.protocol_version = negotiated
                reply = ["HELLO", str(negotiated)]
            elif verb == "SNAP":
                self._require_v2(conn, "SNAP")
                if len(request) != 1:
                    raise ProtocolError("SNAP takes no arguments")
                if len(conn.snapshots) >= _MAX_SNAPSHOTS_PER_CONN:
                    raise ProtocolError(
                        f"too many open snapshots (limit "
                        f"{_MAX_SNAPSHOTS_PER_CONN}); SNAP.END some first"
                    )
                snapshot = await self._run_engine(self.store.snapshot)
                if snapshot.token in conn.snapshots:
                    # Same sequence point as one already held: drop the
                    # duplicate's pin (overwriting the registry entry
                    # would leak the displaced handle's pin forever).
                    snapshot.close()
                else:
                    conn.snapshots[snapshot.token] = snapshot
                reply = ["SNAP", snapshot.token]
            elif verb == "SNAP.END":
                self._require_v2(conn, "SNAP.END")
                if len(request) != 2:
                    raise ProtocolError("SNAP.END needs exactly a token")
                snapshot = conn.snapshots.pop(request[1], None)
                if snapshot is not None:
                    snapshot.close()
                # An unknown token still answers OK: releasing is
                # idempotent, and a client retrying after a lost reply
                # must not see an error for work already done.
                reply = ["OK"]
            elif verb == "GET":
                at: Optional[str] = None
                if len(request) == 4 and request[2] == "AT":
                    self._require_v2(conn, "GET ... AT")
                    at = request[3]
                elif len(request) != 2:
                    raise ProtocolError(
                        "GET needs a key (optionally: AT token)"
                    )
                if at is None:
                    value = await self._run_engine(
                        self.store.get, request[1]
                    )
                else:
                    value = await self._run_engine(
                        lambda: self.store.get(request[1], at=at)
                    )
                reply = ["NONE"] if value is None else ["VALUE", value]
            elif verb == "SCAN":
                fields = list(request)
                at = None
                if len(fields) >= 5 and fields[-2] == "AT":
                    self._require_v2(conn, "SCAN ... AT")
                    at = fields[-1]
                    fields = fields[:-2]
                if len(fields) not in (3, 4):
                    raise ProtocolError(
                        "SCAN needs lo, hi, and an optional limit "
                        "(optionally: AT token)"
                    )
                limit: Optional[int] = None
                if len(fields) == 4:
                    try:
                        limit = int(fields[3])
                    except ValueError:
                        raise ProtocolError(
                            "SCAN limit must be an integer"
                        ) from None
                    if limit < 0:
                        raise ProtocolError(
                            "SCAN limit must be non-negative"
                        )
                if at is None:
                    pairs = await self._run_engine(
                        self.store.scan, fields[1], fields[2], limit
                    )
                else:
                    pairs = await self._run_engine(
                        lambda: self.store.scan(
                            fields[1], fields[2], limit, at=at
                        )
                    )
                reply = ["PAIRS"]
                for key, value in pairs:
                    reply.extend((key, value))
            elif verb == "INFO":
                reply = ["INFO", json.dumps(self.info(), sort_keys=True)]
            elif verb == "HEALTH":
                if len(request) != 1:
                    raise ProtocolError("HEALTH takes no arguments")
                payload = await self._run_engine(self.health)
                reply = ["HEALTH", json.dumps(payload, sort_keys=True)]
            else:
                self.metrics.errors_total += 1
                return ["ERR", "BADREQ", f"unknown command {verb!r}"]
        except Exception as exc:
            self.metrics.errors_total += 1
            return self._error_reply(exc)
        self.metrics.record_op(
            verb, (time.perf_counter() - started) * 1e6
        )
        return reply

    async def _run_engine(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    def _error_reply(self, exc: BaseException) -> List[str]:
        """Map an engine exception onto a structured ERR reply.

        :class:`~repro.errors.ShardUnavailableError` becomes the
        retryable ``ERR UNAVAILABLE <shard> <detail>`` — the degraded
        mode's wire form: only the affected shard's keys fail and the
        connection stays usable. :class:`~repro.errors.BackgroundError`
        gets its own code — a failed background flush/compaction must
        reach the client as data, not as a hung connection — and
        includes the worker's root cause.
        """
        if isinstance(exc, ShardUnavailableError):
            self.metrics.unavailable_errors += 1
            return ["ERR", "UNAVAILABLE", str(exc.shard), str(exc)]
        if isinstance(exc, ReplicationError):
            # Sync replication: the write is durable on the primary but
            # its replica ack failed; the client must not assume it is
            # replicated. The store has already dropped the shard to
            # primary-only service, so a retry will succeed.
            self.metrics.replication_errors += 1
            return ["ERR", "REPLICATION", str(exc)]
        if isinstance(exc, BackgroundError):
            self.metrics.background_errors += 1
            cause = exc.__cause__
            detail = f"{exc} (cause: {cause!r})" if cause else str(exc)
            return ["ERR", "BACKGROUND", detail]
        if isinstance(exc, ClosedError):
            return ["ERR", "CLOSED", str(exc)]
        if isinstance(exc, SnapshotExpiredError):
            # The snapshot's versions were reclaimed (compaction or pin
            # overflow). The client should take a fresh SNAP and retry.
            return ["ERR", "SNAPEXPIRED", str(exc)]
        if isinstance(exc, TxnConflictError):
            # The batch was rolled back before its commit point: nothing
            # was applied on any shard, so a retry is safe.
            return ["ERR", "TXN", str(exc)]
        if isinstance(exc, (ProtocolError, ValueError)):
            return ["ERR", "BADREQ", str(exc)]
        return ["ERR", "INTERNAL", f"{type(exc).__name__}: {exc}"]

    # -- introspection ------------------------------------------------------

    def health(self) -> dict:
        """The HEALTH payload: degraded-mode state of the backing store.

        Sharded stores report per-shard quarantine state via
        ``check_health``; single-tree stores are probed through
        ``background_error`` (non-raising), so the reply works even while
        the engine refuses all data operations.
        """
        check = getattr(self.store, "check_health", None)
        if callable(check):
            return check()
        probe = getattr(self.store, "background_error", None)
        error = probe() if callable(probe) else None
        payload: dict = {
            "state": "healthy" if error is None else "failed",
            "num_shards": int(getattr(self.store, "num_shards", 1)),
            "quarantined": [],
        }
        if error is not None:
            payload["error"] = f"{type(error).__name__}: {error}"
        return payload

    def info(self) -> dict:
        """The INFO payload: serving metrics + engine snapshot.

        ``engine`` is uniform across store kinds (a
        :meth:`~repro.core.stats.TreeStats.to_dict` snapshot — a merged
        rollup for aggregating stores); ``levels`` appears for stores
        exposing a level summary (single trees) and ``shards`` carries the
        per-shard breakdown for sharded/partitioned stores.
        """
        payload = {
            "server": {
                "uptime_s": time.time() - self._started_at,
                "group_commit": self.group_commit,
                "committers": len(self._committers),
                "max_connections": self.max_connections,
                **self.metrics.to_dict(),
            },
            "backpressure": self.store.backpressure(),
            "health": self.health(),
            "engine": self.store.stats.to_dict(),
        }
        level_summary = getattr(self.store, "level_summary", None)
        if callable(level_summary):
            payload["levels"] = level_summary()
        shard_summary = getattr(self.store, "shard_summary", None)
        if callable(shard_summary):
            payload["shards"] = shard_summary()
        replication_summary = getattr(self.store, "replication_summary", None)
        if callable(replication_summary):
            payload["replication"] = replication_summary()
        return payload
