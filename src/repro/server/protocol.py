"""Wire protocol for the KV server: length-prefixed string frames.

The protocol is RESP-like in spirit — every message is a flat array of
UTF-8 strings whose first element is the verb (requests) or status
(replies) — but framed with explicit binary lengths instead of sentinel
characters, so keys and values may contain *any* text, including newlines
and commas, without escaping.

Frame layout (all integers big-endian)::

    u32  payload length (bytes that follow; bounded by max_frame_bytes)
    u32  field count (>= 1)
    then per field:  u32 byte length, UTF-8 bytes

Because frames are self-delimiting, any number of requests can be written
back-to-back on one connection before the first reply arrives — that is
pipelining, and :class:`FrameParser` is the incremental decoder that makes
it work: feed it whatever bytes the transport produced and it yields every
complete message, buffering the tail of a partial frame for the next feed.

Requests::

    PING | GET k | PUT k v | DELETE k | SCAN lo hi [limit] | INFO | HEALTH
    BATCH (PUT k v | DELETE k)...
    HELLO version                               -- v2 handshake
    SNAP | SNAP.END token                       -- v2: snapshot lifecycle
    GET k AT token | SCAN lo hi [limit] AT token  -- v2: snapshot reads
    MULTI (PUT k v | DELETE k)...               -- v2: atomic batch
    CLUSTER | MIGRATE shard node_id
    MIG.BEGIN shard | MIG.APPLY shard (PUT k v | DELETE k)... | MIG.SEAL map
    REPL.SYNC shard map | REPL.SHIP shard (PUT k v | DELETE k)...
    REPL.SEEDED shard | REPL.PING node_id epoch

``SCAN``'s optional fourth field is a non-negative decimal integer capping
the number of returned pairs; the two-field form is unchanged and means
"no limit". ``HEALTH`` reports the store's degraded-mode state without
touching data paths, so it works even while every shard is quarantined.

**Version negotiation.** The protocol is versioned per connection.
A connection starts at version 1 — exactly the verb set older clients
speak — and ``HELLO <version>`` upgrades it: the server answers ``HELLO
<negotiated>`` with the highest version both sides support (currently
``2``). The transactional verbs (``SNAP``, ``SNAP.END``, ``MULTI``, and
the ``AT`` suffix on ``GET``/``SCAN``) require a negotiated version of at
least 2 and answer ``ERR BADREQ`` otherwise, so a v1 client can never
trip over replies it does not understand — and a v1 client that never
sends ``HELLO`` sees a byte-identical protocol.

* ``SNAP`` captures a store-wide consistent read point and replies
  ``SNAP <token>``; the server holds the engine-side version pins until
  ``SNAP.END <token>`` (reply ``OK``) or the connection closes.
* ``GET k AT token`` / ``SCAN lo hi [limit] AT token`` answer as of the
  snapshot, consistent across shards.
* ``MULTI`` carries the same sub-op stream as ``BATCH`` but commits
  store-wide atomically — across shards via two-phase commit — and
  replies ``OK <n>``. (``BATCH`` keeps its historical per-routing
  semantics on the group-commit fast path.)

The last four request lines exist only on cluster nodes
(:mod:`repro.cluster`): ``CLUSTER`` fetches the node's cluster map,
``MIGRATE`` asks the owning node to migrate one shard to a peer, the
``MIG.*`` verbs are the node-to-node migration stream (begin a receiving
shard, apply a shipped batch, seal ownership under a bumped-epoch map),
and the ``REPL.*`` verbs are the node-to-node replication stream
(``REPL.SYNC`` wipes and reopens a standby for reseeding under the
shipped map, ``REPL.SHIP`` applies one seed chunk or live commit group,
``REPL.SEEDED`` marks the standby promotable, ``REPL.PING`` is the peer
heartbeat carrying the sender's map epoch).

Replies::

    PONG | OK [n] | VALUE v | NONE | PAIRS k v ... | INFO json
    HELLO version           -- negotiated protocol version
    SNAP token              -- snapshot handle (v2)
    HEALTH json             -- {"state", "num_shards", "quarantined", ...}
    CLUSTER json            -- the node's ClusterMap (epoch'd shard→node)
    BUSY message            -- retryable: the engine is write-stopped
    ERR code message        -- structured failure, connection stays usable

Error codes a client should know:

* ``ERR UNAVAILABLE <shard> <detail>`` — the key's shard is quarantined
  after a background failure; the *connection* and every other shard stay
  usable, so clients should fail only the affected keys (and may retry
  after an operator restores the shard). The third field is the decimal
  shard index.
* ``ERR MOVED <shard> <host>:<port> <epoch> <detail>`` — cluster mode:
  the shard is alive but owned by the node at ``host:port`` (as of map
  epoch ``epoch``). Retryable immediately *at that address*; a client
  whose map epoch is older should refresh via ``CLUSTER``.
* ``ERR BACKGROUND <detail>`` — a background flush/compaction failed on a
  non-sharded store; the store stays readable but refuses writes.
* ``ERR SNAPEXPIRED <detail>`` — the snapshot named by ``AT`` can no
  longer be served consistently (its versions were compacted away or the
  engine's pin budget overflowed). Take a fresh ``SNAP`` and retry.
* ``ERR TXN <detail>`` — a ``MULTI`` batch was rolled back before its
  commit point; nothing was applied anywhere. Retryable as-is.
* ``ERR BADREQ | PROTOCOL | CLOSED | INTERNAL`` — see the server module.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Default ceiling on one frame's payload; the server may lower/raise it.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Request verbs the server dispatches (``CLUSTER``/``MIGRATE``/``MIG.*``
#: /``REPL.*`` only on cluster nodes).
REQUEST_VERBS = (
    "PING", "GET", "PUT", "DELETE", "SCAN", "BATCH", "INFO", "HEALTH",
    "HELLO", "SNAP", "SNAP.END", "MULTI",
    "CLUSTER", "MIGRATE", "MIG.BEGIN", "MIG.APPLY", "MIG.SEAL",
    "REPL.SYNC", "REPL.SHIP", "REPL.SEEDED", "REPL.PING",
)

#: Highest protocol version this codebase speaks (see the module
#: docstring's version-negotiation section).
PROTOCOL_VERSION = 2

#: Reply statuses a client must understand.
REPLY_STATUSES = (
    "PONG", "OK", "VALUE", "NONE", "PAIRS", "INFO", "HEALTH", "CLUSTER",
    "HELLO", "SNAP", "BUSY", "ERR",
)

_U32 = struct.Struct(">I")
_U32x2 = struct.Struct(">II")

#: Consumed-prefix size past which :class:`FrameParser` compacts its buffer.
#: Compaction only runs once the consumed prefix is also at least half the
#: buffer, so each retained byte is copied O(1) times amortized — the
#: offset-cursor design that replaces the old delete-per-frame behavior
#: (O(n²) on heavily pipelined connections).
_COMPACT_BYTES = 64 * 1024


class ProtocolError(ReproError):
    """A frame violated the wire protocol (malformed, oversized, …).

    Unlike an ``ERR`` reply this is not recoverable on the same
    connection: once framing is lost the stream cannot be re-synchronized,
    so both ends close the connection on it.
    """


def encode_message(fields: Sequence[str]) -> bytes:
    """Encode one message (a non-empty list of strings) as a frame."""
    if len(fields) == 1:
        # Hot constant replies: every successful PUT/DELETE is ``OK`` and
        # every missing GET is ``NIL``, so these frames are pre-encoded.
        frame = _CONSTANT_FRAMES.get(fields[0])
        if frame is not None:
            return frame
    if not fields:
        raise ProtocolError("messages need at least one field")
    encoded = [field.encode("utf-8") for field in fields]
    payload_len = _U32.size * (len(encoded) + 1) + sum(
        len(raw) for raw in encoded
    )
    chunks: List[bytes] = [_U32x2.pack(payload_len, len(encoded))]
    pack_len = _U32.pack
    append = chunks.append
    for raw in encoded:
        append(pack_len(len(raw)))
        append(raw)
    return b"".join(chunks)


_CONSTANT_FRAMES: Dict[str, bytes] = {
    word: (
        _U32x2.pack(_U32.size * 2 + len(word), 1)
        + _U32.pack(len(word))
        + word.encode("utf-8")
    )
    for word in ("OK", "NIL", "PONG")
}


def encode_messages(messages: Sequence[Sequence[str]]) -> bytes:
    """Encode several messages into one contiguous buffer.

    The serving layer uses this to answer a whole pipelined run with a
    single transport write — one ``send(2)`` for N replies instead of N.
    """
    return b"".join(encode_message(message) for message in messages)


class FrameParser:
    """Incremental zero-copy frame decoder: bytes in, complete messages out.

    One parser per connection. :meth:`feed` accepts arbitrary byte chunks
    (a TCP stream fragments frames however it likes) and returns every
    message completed by that chunk, keeping partial-frame bytes buffered.
    A frame whose declared payload exceeds ``max_frame_bytes`` raises
    :class:`ProtocolError` *before* the payload is buffered, bounding
    memory per connection.

    Internally the parser keeps one append-only ``bytearray`` and an
    offset cursor. Completed frames are decoded through ``memoryview``
    slices of that buffer — field bytes are copied exactly once, straight
    into their final ``str`` objects — and consumed bytes are reclaimed
    by periodic compaction instead of a per-frame ``del buffer[:end]``,
    which re-shifted the whole residue on every frame and made heavily
    pipelined feeds quadratic.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._cursor = 0  # bytes before this offset are consumed

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently buffered and not yet consumed (observability)."""
        return len(self._buffer) - self._cursor

    def feed(self, data: bytes) -> List[List[str]]:
        """Consume ``data``; return the messages it completed (in order)."""
        buffer = self._buffer
        buffer += data
        messages: List[List[str]] = []
        cursor = self._cursor
        buffered = len(buffer)
        header_size = _U32.size
        unpack_len = _U32.unpack_from
        decode = self._decode_payload
        view = memoryview(buffer)
        try:
            while buffered - cursor >= header_size:
                (payload_len,) = unpack_len(buffer, cursor)
                if payload_len > self.max_frame_bytes:
                    raise ProtocolError(
                        f"frame of {payload_len} bytes exceeds the "
                        f"{self.max_frame_bytes}-byte limit"
                    )
                end = cursor + header_size + payload_len
                if buffered < end:
                    break
                messages.append(
                    decode(view[cursor + header_size : end], payload_len)
                )
                cursor = end
        finally:
            view.release()
            self._cursor = cursor
            self._compact()
        return messages

    def _compact(self) -> None:
        """Reclaim the consumed prefix when it is worth the copy."""
        cursor = self._cursor
        if cursor == 0:
            return
        buffer = self._buffer
        if cursor == len(buffer):
            buffer.clear()
            self._cursor = 0
        elif cursor >= _COMPACT_BYTES and cursor * 2 >= len(buffer):
            del buffer[:cursor]
            self._cursor = 0

    @staticmethod
    def _decode_payload(payload: memoryview, payload_len: int) -> List[str]:
        header_size = _U32.size
        if payload_len < header_size:
            raise ProtocolError("frame payload too short for a field count")
        (count,) = _U32.unpack_from(payload)
        if count < 1:
            raise ProtocolError("messages need at least one field")
        fields: List[str] = []
        append = fields.append
        unpack_len = _U32.unpack_from
        offset = header_size
        for _ in range(count):
            if payload_len < offset + header_size:
                raise ProtocolError("frame truncated inside a field header")
            (length,) = unpack_len(payload, offset)
            offset += header_size
            if payload_len < offset + length:
                raise ProtocolError("frame truncated inside a field body")
            try:
                # str(memoryview, "utf-8") decodes the slice without an
                # intermediate bytes object: the only copy is into the str.
                append(str(payload[offset : offset + length], "utf-8"))
            except UnicodeDecodeError as exc:
                raise ProtocolError("field is not valid UTF-8") from exc
            offset += length
        if offset != payload_len:
            raise ProtocolError("frame has trailing bytes after last field")
        return fields


# -- BATCH sub-op (de)serialization -----------------------------------------

#: One batch write as the engine consumes it: (op, key, value-or-None).
BatchOp = Tuple[str, str, Optional[str]]


def encode_batch(ops: Iterable[BatchOp]) -> List[str]:
    """Flatten batch ops into a BATCH request's field list."""
    fields = ["BATCH"]
    for op, key, value in ops:
        if op == "put":
            fields.extend(("PUT", key, value if value is not None else ""))
        elif op == "delete":
            fields.extend(("DELETE", key))
        else:
            raise ProtocolError(f"unknown batch op {op!r}")
    return fields


def decode_batch(fields: Sequence[str]) -> List[BatchOp]:
    """Parse a BATCH request's fields back into engine batch ops."""
    ops: List[BatchOp] = []
    index = 1  # fields[0] == "BATCH"
    while index < len(fields):
        verb = fields[index]
        if verb == "PUT":
            if index + 2 >= len(fields):
                raise ProtocolError("BATCH PUT needs a key and a value")
            ops.append(("put", fields[index + 1], fields[index + 2]))
            index += 3
        elif verb == "DELETE":
            if index + 1 >= len(fields):
                raise ProtocolError("BATCH DELETE needs a key")
            ops.append(("delete", fields[index + 1], None))
            index += 2
        else:
            raise ProtocolError(f"unknown BATCH sub-op {verb!r}")
    return ops
