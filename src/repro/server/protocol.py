"""Wire protocol for the KV server: length-prefixed string frames.

The protocol is RESP-like in spirit — every message is a flat array of
UTF-8 strings whose first element is the verb (requests) or status
(replies) — but framed with explicit binary lengths instead of sentinel
characters, so keys and values may contain *any* text, including newlines
and commas, without escaping.

Frame layout (all integers big-endian)::

    u32  payload length (bytes that follow; bounded by max_frame_bytes)
    u32  field count (>= 1)
    then per field:  u32 byte length, UTF-8 bytes

Because frames are self-delimiting, any number of requests can be written
back-to-back on one connection before the first reply arrives — that is
pipelining, and :class:`FrameParser` is the incremental decoder that makes
it work: feed it whatever bytes the transport produced and it yields every
complete message, buffering the tail of a partial frame for the next feed.

Requests::

    PING | GET k | PUT k v | DELETE k | SCAN lo hi [limit] | INFO | HEALTH
    BATCH (PUT k v | DELETE k)...

``SCAN``'s optional fourth field is a non-negative decimal integer capping
the number of returned pairs; the two-field form is unchanged and means
"no limit". ``HEALTH`` reports the store's degraded-mode state without
touching data paths, so it works even while every shard is quarantined.

Replies::

    PONG | OK [n] | VALUE v | NONE | PAIRS k v ... | INFO json
    HEALTH json             -- {"state", "num_shards", "quarantined", ...}
    BUSY message            -- retryable: the engine is write-stopped
    ERR code message        -- structured failure, connection stays usable

Error codes a client should know:

* ``ERR UNAVAILABLE <shard> <detail>`` — the key's shard is quarantined
  after a background failure; the *connection* and every other shard stay
  usable, so clients should fail only the affected keys (and may retry
  after an operator restores the shard). The third field is the decimal
  shard index.
* ``ERR BACKGROUND <detail>`` — a background flush/compaction failed on a
  non-sharded store; the store stays readable but refuses writes.
* ``ERR BADREQ | PROTOCOL | CLOSED | INTERNAL`` — see the server module.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Default ceiling on one frame's payload; the server may lower/raise it.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Request verbs the server dispatches.
REQUEST_VERBS = (
    "PING", "GET", "PUT", "DELETE", "SCAN", "BATCH", "INFO", "HEALTH",
)

#: Reply statuses a client must understand.
REPLY_STATUSES = (
    "PONG", "OK", "VALUE", "NONE", "PAIRS", "INFO", "HEALTH", "BUSY", "ERR",
)

_U32 = struct.Struct(">I")


class ProtocolError(ReproError):
    """A frame violated the wire protocol (malformed, oversized, …).

    Unlike an ``ERR`` reply this is not recoverable on the same
    connection: once framing is lost the stream cannot be re-synchronized,
    so both ends close the connection on it.
    """


def encode_message(fields: Sequence[str]) -> bytes:
    """Encode one message (a non-empty list of strings) as a frame."""
    if not fields:
        raise ProtocolError("messages need at least one field")
    chunks: List[bytes] = [b"", _U32.pack(len(fields))]
    for item in fields:
        raw = item.encode("utf-8")
        chunks.append(_U32.pack(len(raw)))
        chunks.append(raw)
    payload_len = sum(len(chunk) for chunk in chunks)  # chunks[0] is empty
    chunks[0] = _U32.pack(payload_len)
    return b"".join(chunks)


class FrameParser:
    """Incremental frame decoder: bytes in, complete messages out.

    One parser per connection. :meth:`feed` accepts arbitrary byte chunks
    (a TCP stream fragments frames however it likes) and returns every
    message completed by that chunk, keeping partial-frame bytes buffered.
    A frame whose declared payload exceeds ``max_frame_bytes`` raises
    :class:`ProtocolError` *before* the payload is buffered, bounding
    memory per connection.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[List[str]]:
        """Consume ``data``; return the messages it completed (in order)."""
        self._buffer.extend(data)
        messages: List[List[str]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return messages
            messages.append(self._decode_payload(frame))

    def _next_frame(self) -> Optional[bytes]:
        if len(self._buffer) < _U32.size:
            return None
        (payload_len,) = _U32.unpack_from(self._buffer)
        if payload_len > self.max_frame_bytes:
            raise ProtocolError(
                f"frame of {payload_len} bytes exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        end = _U32.size + payload_len
        if len(self._buffer) < end:
            return None
        frame = bytes(self._buffer[_U32.size : end])
        del self._buffer[:end]
        return frame

    def _decode_payload(self, payload: bytes) -> List[str]:
        if len(payload) < _U32.size:
            raise ProtocolError("frame payload too short for a field count")
        (count,) = _U32.unpack_from(payload)
        if count < 1:
            raise ProtocolError("messages need at least one field")
        fields: List[str] = []
        offset = _U32.size
        for _ in range(count):
            if len(payload) < offset + _U32.size:
                raise ProtocolError("frame truncated inside a field header")
            (length,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            if len(payload) < offset + length:
                raise ProtocolError("frame truncated inside a field body")
            try:
                fields.append(payload[offset : offset + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise ProtocolError("field is not valid UTF-8") from exc
            offset += length
        if offset != len(payload):
            raise ProtocolError("frame has trailing bytes after last field")
        return fields


# -- BATCH sub-op (de)serialization -----------------------------------------

#: One batch write as the engine consumes it: (op, key, value-or-None).
BatchOp = Tuple[str, str, Optional[str]]


def encode_batch(ops: Iterable[BatchOp]) -> List[str]:
    """Flatten batch ops into a BATCH request's field list."""
    fields = ["BATCH"]
    for op, key, value in ops:
        if op == "put":
            fields.extend(("PUT", key, value if value is not None else ""))
        elif op == "delete":
            fields.extend(("DELETE", key))
        else:
            raise ProtocolError(f"unknown batch op {op!r}")
    return fields


def decode_batch(fields: Sequence[str]) -> List[BatchOp]:
    """Parse a BATCH request's fields back into engine batch ops."""
    ops: List[BatchOp] = []
    index = 1  # fields[0] == "BATCH"
    while index < len(fields):
        verb = fields[index]
        if verb == "PUT":
            if index + 2 >= len(fields):
                raise ProtocolError("BATCH PUT needs a key and a value")
            ops.append(("put", fields[index + 1], fields[index + 2]))
            index += 3
        elif verb == "DELETE":
            if index + 1 >= len(fields):
                raise ProtocolError("BATCH DELETE needs a key")
            ops.append(("delete", fields[index + 1], None))
            index += 2
        else:
            raise ProtocolError(f"unknown BATCH sub-op {verb!r}")
    return ops
