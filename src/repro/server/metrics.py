"""Server-side observability: latency histograms and gauges for INFO.

The engine's :class:`~repro.core.stats.TreeStats` measures storage work;
this module measures the *serving* layer around it — per-operation request
latencies, connection and queue gauges, admission-control counters, and
group-commit effectiveness. Everything here is touched only from the
server's event loop, so no locking is needed; the ``INFO`` command
serializes :meth:`ServerMetrics.to_dict` next to the engine snapshot.
"""

from __future__ import annotations

from typing import Dict, List


class LatencyHistogram:
    """Power-of-two-bucketed latency histogram (microseconds).

    Buckets are ``[2^i, 2^(i+1))`` µs, which keeps the memory constant and
    the percentile error bounded by 2× — plenty for serving dashboards
    where the interesting signal is orders of magnitude (a 300 µs p50 vs
    a 40 ms p99 tail). Percentiles interpolate to the upper bucket edge,
    so they never understate the tail.
    """

    def __init__(self, max_bucket: int = 40) -> None:
        self._counts: List[int] = [0] * max_bucket
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def record(self, micros: float) -> None:
        """Add one latency observation."""
        micros = max(0.0, micros)
        self.count += 1
        self.total_us += micros
        self.max_us = max(self.max_us, micros)
        bucket = max(0, int(micros).bit_length() - 1) if micros >= 1 else 0
        self._counts[min(bucket, len(self._counts) - 1)] += 1

    def percentile_us(self, fraction: float) -> float:
        """Upper edge of the bucket holding the ``fraction`` quantile."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        rank = max(1, round(fraction * self.count))
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                return min(float(2 ** (index + 1)), self.max_us)
        return self.max_us

    @property
    def mean_us(self) -> float:
        """Arithmetic mean of all observations."""
        return self.total_us / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable summary (count, mean, p50/p99, max)."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.percentile_us(0.50),
            "p99_us": self.percentile_us(0.99),
            "max_us": self.max_us,
        }


class ServerMetrics:
    """Counters, gauges, and per-op histograms for one server instance."""

    def __init__(self) -> None:
        #: op name -> request-latency histogram (µs, request to reply).
        self.op_latencies: Dict[str, LatencyHistogram] = {}
        self.requests_total = 0
        self.errors_total = 0
        self.protocol_errors = 0
        self.background_errors = 0
        #: Writes/reads refused because their shard is quarantined.
        self.unavailable_errors = 0
        #: Sync-mode writes whose replica ack failed (locally durable,
        #: not replicated; the store degrades to primary-only service).
        self.replication_errors = 0
        #: Writes rejected with BUSY because the engine was write-stopped.
        self.busy_rejections = 0
        #: Writes delayed (reply postponed) by the slowdown trigger.
        self.slowdown_delays = 0
        #: Engine commits performed by the group committer.
        self.group_commits = 0
        #: Client write ops those commits carried (ops/commit = batching).
        self.group_committed_ops = 0
        self.connections_open = 0
        self.connections_peak = 0
        self.connections_total = 0
        self.connections_rejected = 0

    def record_op(self, op: str, micros: float) -> None:
        """Count one completed request and its latency."""
        self.requests_total += 1
        histogram = self.op_latencies.get(op)
        if histogram is None:
            histogram = self.op_latencies[op] = LatencyHistogram()
        histogram.record(micros)

    def connection_opened(self) -> None:
        """Track one accepted connection."""
        self.connections_open += 1
        self.connections_total += 1
        self.connections_peak = max(
            self.connections_peak, self.connections_open
        )

    def connection_closed(self) -> None:
        """Track one finished connection."""
        self.connections_open = max(0, self.connections_open - 1)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot, served under INFO's ``server`` key."""
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "protocol_errors": self.protocol_errors,
            "background_errors": self.background_errors,
            "unavailable_errors": self.unavailable_errors,
            "replication_errors": self.replication_errors,
            "busy_rejections": self.busy_rejections,
            "slowdown_delays": self.slowdown_delays,
            "group_commits": self.group_commits,
            "group_committed_ops": self.group_committed_ops,
            "ops_per_group_commit": (
                self.group_committed_ops / self.group_commits
                if self.group_commits
                else 0.0
            ),
            "connections": {
                "open": self.connections_open,
                "peak": self.connections_peak,
                "total": self.connections_total,
                "rejected": self.connections_rejected,
            },
            "latency_us": {
                op: histogram.to_dict()
                for op, histogram in sorted(self.op_latencies.items())
            },
        }
