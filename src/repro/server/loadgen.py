"""Closed-loop load generation against a live KV server.

Shared by the ``bench-serve`` CLI subcommand and experiment E22
(``benchmarks/bench_e22_server.py``): start a server over a fresh tree,
drive it with N concurrent client connections each keeping a fixed
pipeline depth outstanding, and report wall-clock throughput plus
client-observed latency percentiles.

The loop is *closed*: every client issues ``pipeline_depth`` requests,
awaits all their replies, then issues the next window — so throughput
reflects the full request/commit/reply cycle, and the group-commit
contrast isolates the serving layer (same engine, same protocol, only
the commit coalescing differs).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ..core.config import LSMConfig
from ..core.stats import percentile
from ..core.tree import LSMTree
from .client import KVClient
from .server import KVServer


async def _client_worker(
    host: str,
    port: int,
    client_id: int,
    ops: int,
    pipeline_depth: int,
    value: str,
    get_every: int,
    latencies_us: List[float],
) -> None:
    """One closed-loop client: windows of ``pipeline_depth`` requests."""

    async def timed(coroutine) -> None:
        started = time.perf_counter()
        await coroutine
        latencies_us.append((time.perf_counter() - started) * 1e6)

    client = await KVClient.connect(host, port)
    try:
        issued = 0
        while issued < ops:
            window = min(pipeline_depth, ops - issued)
            requests = []
            for offset in range(window):
                sequence = issued + offset
                key = f"c{client_id:03d}-{sequence:09d}"
                if get_every and sequence % get_every == get_every - 1:
                    requests.append(timed(client.get(key)))
                else:
                    requests.append(timed(client.put(key, value)))
            await asyncio.gather(*requests)
            issued += window
    finally:
        await client.close()


async def run_closed_loop(
    host: str,
    port: int,
    *,
    clients: int,
    pipeline_depth: int,
    ops_per_client: int,
    value_bytes: int = 64,
    get_every: int = 0,
) -> Dict[str, float]:
    """Drive a running server; return throughput + latency percentiles.

    ``get_every`` > 0 turns every Nth request into a GET of an
    already-written key, mixing reads into the closed loop.
    """
    value = "v" * value_bytes
    latencies_us: List[float] = []
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_worker(
                host,
                port,
                client_id,
                ops_per_client,
                pipeline_depth,
                value,
                get_every,
                latencies_us,
            )
            for client_id in range(clients)
        )
    )
    wall_s = time.perf_counter() - started
    total_ops = clients * ops_per_client
    return {
        "clients": clients,
        "pipeline_depth": pipeline_depth,
        "ops": total_ops,
        "wall_s": wall_s,
        "throughput_ops_s": total_ops / wall_s if wall_s > 0 else 0.0,
        "p50_us": percentile(latencies_us, 0.50),
        "p99_us": percentile(latencies_us, 0.99),
        "max_us": max(latencies_us) if latencies_us else 0.0,
    }


def measure_server(
    *,
    clients: int,
    pipeline_depth: int,
    ops_per_client: int,
    group_commit: bool,
    config: Optional[LSMConfig] = None,
    wal_dir: Optional[str] = None,
    value_bytes: int = 64,
    get_every: int = 0,
    executor_threads: int = 4,
) -> Dict[str, float]:
    """Start a fresh server+tree, run one closed-loop measurement, stop.

    A synchronous convenience wrapper: everything (server and clients)
    runs on one fresh event loop, so callers — benchmarks, the CLI —
    need no asyncio plumbing of their own.
    """

    async def measurement() -> Dict[str, float]:
        tree = LSMTree(
            config
            or LSMConfig(
                background_mode=True,
                num_buffers=4,
                flush_threads=2,
                compaction_threads=2,
                # Durable commits: the cost group commit amortizes. Only
                # takes effect when the caller provides a wal_dir.
                wal_fsync=True,
            ),
            wal_dir=wal_dir,
        )
        server = KVServer(
            tree,
            group_commit=group_commit,
            executor_threads=executor_threads,
            owns_tree=True,
        )
        await server.start()
        try:
            row = await run_closed_loop(
                server.host,
                server.port,
                clients=clients,
                pipeline_depth=pipeline_depth,
                ops_per_client=ops_per_client,
                value_bytes=value_bytes,
                get_every=get_every,
            )
            row["group_commit"] = group_commit
            row["group_commits"] = server.metrics.group_commits
            row["ops_per_commit"] = (
                server.metrics.group_committed_ops
                / server.metrics.group_commits
                if server.metrics.group_commits
                else 0.0
            )
            row["busy_rejections"] = server.metrics.busy_rejections
            return row
        finally:
            await server.stop()

    return asyncio.run(measurement())
