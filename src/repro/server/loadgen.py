"""Closed-loop load generation against a live KV server.

Shared by the ``bench-serve`` CLI subcommand and experiment E22
(``benchmarks/bench_e22_server.py``): start a server over a fresh tree,
drive it with N concurrent client connections each keeping a fixed
pipeline depth outstanding, and report wall-clock throughput plus
client-observed latency percentiles.

The loop is *closed*: every client issues ``pipeline_depth`` requests,
awaits all their replies, then issues the next window — so throughput
reflects the full request/commit/reply cycle, and the group-commit
contrast isolates the serving layer (same engine, same protocol, only
the commit coalescing differs).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from ..api import KVStore
from ..core.config import LSMConfig
from ..core.stats import percentile
from ..core.tree import LSMTree
from ..shard import ShardedStore
from .client import KVClient
from .server import KVServer, maybe_install_uvloop


async def _client_worker(
    host: str,
    port: int,
    client_id: int,
    ops: int,
    pipeline_depth: int,
    value: str,
    get_every: int,
    latencies_us: List[float],
) -> None:
    """One closed-loop client: windows of ``pipeline_depth`` requests.

    Each window is issued through :meth:`KVClient.request_many` — one
    synchronous call, one reply future, and one transport write for the
    whole window instead of a task (or even a future) per request. BUSY
    and error replies fall back to the retrying coroutine API
    (:meth:`~KVClient.put` / :meth:`~KVClient.get`), so backpressure
    semantics match the per-request path.
    """
    perf_counter = time.perf_counter
    client = await KVClient.connect(host, port)
    try:
        issued = 0
        while issued < ops:
            window = min(pipeline_depth, ops - issued)
            requests: List[List[str]] = []
            for offset in range(window):
                sequence = issued + offset
                key = f"c{client_id:03d}-{sequence:09d}"
                if get_every and sequence % get_every == get_every - 1:
                    requests.append(["GET", key])
                else:
                    requests.append(["PUT", key, value])
            started = perf_counter()
            replies = await client.request_many(requests)
            window_us = (perf_counter() - started) * 1e6
            retries = []
            for fields, reply in zip(requests, replies):
                if reply[0] in ("BUSY", "ERR"):
                    retries.append(fields)
                else:
                    latencies_us.append(window_us)
            for fields in retries:  # rare: ride the retrying slow path
                started = perf_counter()
                if fields[0] == "GET":
                    await client.get(fields[1])
                else:
                    await client.put(fields[1], fields[2])
                latencies_us.append((perf_counter() - started) * 1e6)
            issued += window
    finally:
        await client.close()


async def run_closed_loop(
    host: str,
    port: int,
    *,
    clients: int,
    pipeline_depth: int,
    ops_per_client: int,
    value_bytes: int = 64,
    get_every: int = 0,
) -> Dict[str, float]:
    """Drive a running server; return throughput + latency percentiles.

    ``get_every`` > 0 turns every Nth request into a GET of an
    already-written key, mixing reads into the closed loop.
    """
    value = "v" * value_bytes
    latencies_us: List[float] = []
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_worker(
                host,
                port,
                client_id,
                ops_per_client,
                pipeline_depth,
                value,
                get_every,
                latencies_us,
            )
            for client_id in range(clients)
        )
    )
    wall_s = time.perf_counter() - started
    total_ops = clients * ops_per_client
    return {
        "clients": clients,
        "pipeline_depth": pipeline_depth,
        "ops": total_ops,
        "wall_s": wall_s,
        "throughput_ops_s": total_ops / wall_s if wall_s > 0 else 0.0,
        "p50_us": percentile(latencies_us, 0.50),
        "p99_us": percentile(latencies_us, 0.99),
        "max_us": max(latencies_us) if latencies_us else 0.0,
    }


def measure_server(
    *,
    clients: int,
    pipeline_depth: int,
    ops_per_client: int,
    group_commit: bool,
    config: Optional[LSMConfig] = None,
    wal_dir: Optional[str] = None,
    value_bytes: int = 64,
    get_every: int = 0,
    executor_threads: Optional[int] = None,
    shards: int = 1,
) -> Dict[str, float]:
    """Start a fresh server+store, run one closed-loop measurement, stop.

    A synchronous convenience wrapper: everything (server and clients)
    runs on one fresh event loop, so callers — benchmarks, the CLI —
    need no asyncio plumbing of their own. ``shards`` > 1 backs the
    server with a hash-routed :class:`~repro.shard.ShardedStore` whose
    per-shard group committers run in parallel. Setting ``REPRO_UVLOOP=1``
    runs the measurement on uvloop when it is installed.
    """
    maybe_install_uvloop()

    async def measurement() -> Dict[str, float]:
        engine_config = config or LSMConfig(
            background_mode=True,
            num_buffers=4,
            flush_threads=2,
            compaction_threads=2,
            # Durable commits: the cost group commit amortizes. Only
            # takes effect when the caller provides a wal_dir.
            wal_fsync=True,
        )
        store: KVStore
        if shards > 1:
            store = ShardedStore(
                shards, engine_config, wal_dir=wal_dir
            )
        else:
            store = LSMTree(engine_config, wal_dir=wal_dir)
        server = KVServer(
            store,
            group_commit=group_commit,
            executor_threads=executor_threads,
            owns_tree=True,
        )
        await server.start()
        try:
            row = await run_closed_loop(
                server.host,
                server.port,
                clients=clients,
                pipeline_depth=pipeline_depth,
                ops_per_client=ops_per_client,
                value_bytes=value_bytes,
                get_every=get_every,
            )
            row["group_commit"] = group_commit
            row["shards"] = shards
            row["group_commits"] = server.metrics.group_commits
            row["ops_per_commit"] = (
                server.metrics.group_committed_ops
                / server.metrics.group_commits
                if server.metrics.group_commits
                else 0.0
            )
            row["busy_rejections"] = server.metrics.busy_rejections
        finally:
            # Stopping the server closes the store (``owns_tree``), which
            # drains every rotated buffer and pending compaction. Timing
            # it separately exposes the background debt the serving
            # window deferred: ``sustained_ops_s`` charges ingestion for
            # *all* the work it caused, not just the part that fit
            # inside the measurement window.
            drain_started = time.perf_counter()
            await server.stop()
            drain_s = time.perf_counter() - drain_started
        row["drain_s"] = drain_s
        row["sustained_ops_s"] = row["ops"] / (row["wall_s"] + drain_s)
        return row

    return asyncio.run(measurement())
