"""repro.server: an asyncio network front-end for the LSM engine.

The serving layer that turns the library into a system: a length-prefixed
wire protocol with pipelining (:mod:`~repro.server.protocol`), a TCP
server that owns one :class:`~repro.core.tree.LSMTree` and adds group
commit plus admission control (:mod:`~repro.server.server`), a pipelined
retrying client (:mod:`~repro.server.client`), serving-side metrics
surfaced through the ``INFO`` command (:mod:`~repro.server.metrics`), and
a closed-loop load generator (:mod:`~repro.server.loadgen`).

Quickstart::

    # shell 1
    python -m repro.cli serve --port 7379 --background

    # shell 2 (python)
    import asyncio
    from repro.server import KVClient

    async def main():
        async with await KVClient.connect("127.0.0.1", 7379) as kv:
            await kv.put("user42", "alice")
            print(await kv.get("user42"))

    asyncio.run(main())
"""

from .client import (
    BusyError,
    KVClient,
    ServerError,
    SnapshotExpiredError,
    TxnError,
    UnavailableError,
)
from .metrics import LatencyHistogram, ServerMetrics
from .protocol import (
    PROTOCOL_VERSION,
    FrameParser,
    ProtocolError,
    decode_batch,
    encode_batch,
    encode_message,
    encode_messages,
)
from .server import KVServer, maybe_install_uvloop

__all__ = [
    "KVServer",
    "KVClient",
    "ServerError",
    "BusyError",
    "UnavailableError",
    "SnapshotExpiredError",
    "TxnError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "FrameParser",
    "encode_message",
    "encode_messages",
    "encode_batch",
    "decode_batch",
    "ServerMetrics",
    "LatencyHistogram",
    "maybe_install_uvloop",
]
