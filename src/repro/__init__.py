"""repro: a dissectable LSM-tree storage engine and design-space explorer.

A from-scratch reproduction of the system described in *Dissecting,
Designing, and Optimizing LSM-based Data Stores* (SIGMOD 2022 tutorial):
a complete LSM storage engine whose every design decision — buffer
implementation, disk data layout, compaction primitives, filter and cache
policies, memory allocation — is an explicit, swappable knob, together with
the analytic cost models and tuning tools to navigate that design space.

Quickstart::

    from repro import LSMTree, LSMConfig

    tree = LSMTree(LSMConfig(layout="leveling", size_ratio=4))
    tree.put("user1", "alice")
    tree.get("user1")        # -> 'alice'
    tree.scan("user0", "user9")
    tree.delete("user1")
    tree.write_amplification()
"""

from .api import BatchOp, KVStore, PartialScanResult, Snapshot
from .cluster import (
    ClusterClient,
    ClusterMap,
    ClusterNode,
    NodeInfo,
    NodeStore,
)
from .core.config import (
    LSMConfig,
    cassandra_like,
    dostoevsky_like,
    leveldb_like,
    rocksdb_like,
)
from .core.entry import Entry, EntryKind
from .core.merge_operator import (
    Int64AddOperator,
    MaxOperator,
    MergeOperator,
    StringAppendOperator,
)
from .core.range_tombstone import RangeTombstone
from .core.stats import TreeStats
from .core.tree import LSMTree
from .errors import (
    BackgroundError,
    ClosedError,
    CompactionError,
    ConfigError,
    CorruptionError,
    FilterError,
    ReproError,
    SnapshotExpiredError,
    TxnConflictError,
)
from .partition import PartitionedStore, range_boundaries
from .replication import ReplicatedStore
from .shard import ShardedStore
from .storage.disk import DiskProfile, SimulatedDisk

__version__ = "1.2.0"

__all__ = [
    "KVStore",
    "BatchOp",
    "Snapshot",
    "PartialScanResult",
    "LSMTree",
    "ShardedStore",
    "ReplicatedStore",
    "PartitionedStore",
    "range_boundaries",
    "ClusterMap",
    "NodeInfo",
    "NodeStore",
    "ClusterNode",
    "ClusterClient",
    "LSMConfig",
    "rocksdb_like",
    "cassandra_like",
    "leveldb_like",
    "dostoevsky_like",
    "Entry",
    "EntryKind",
    "MergeOperator",
    "StringAppendOperator",
    "Int64AddOperator",
    "MaxOperator",
    "RangeTombstone",
    "TreeStats",
    "SimulatedDisk",
    "DiskProfile",
    "ReproError",
    "BackgroundError",
    "ClosedError",
    "ConfigError",
    "CorruptionError",
    "CompactionError",
    "FilterError",
    "SnapshotExpiredError",
    "TxnConflictError",
    "__version__",
]
