"""The unified store protocol: one contract, many engines.

Every storage engine in this repository — the single
:class:`~repro.core.tree.LSMTree`, the range-partitioned forest
(:class:`~repro.partition.PartitionedStore`), and the parallel sharded
engine (:class:`~repro.shard.ShardedStore`) — exposes the same key-value
surface. :class:`KVStore` names that surface as a runtime-checkable
:class:`typing.Protocol`, so serving layers, benchmarks, and tests can be
written once against the protocol and run unmodified over any engine:

    >>> from repro import KVStore, LSMTree
    >>> isinstance(LSMTree(), KVStore)
    True

The contract, beyond the method signatures:

* ``scan`` returns key-sorted pairs; ``limit`` (when not ``None``) caps
  the number of pairs returned, counted after tombstone resolution.
* ``write_batch`` validates every op before applying any, and is atomic
  *per routing unit*: a single tree commits the whole batch under one
  mutex acquisition with one WAL sync; a sharded store guarantees
  atomicity only within each shard's sub-batch (see
  :meth:`repro.shard.ShardedStore.write_batch` for the exact contract).
* ``backpressure`` never blocks and always carries a ``state`` key with
  one of ``"ok"``, ``"slowdown"``, or ``"stop"``.
* ``stats`` is a :class:`~repro.core.stats.TreeStats` — aggregating
  stores return a merged rollup (:meth:`TreeStats.merged`), so
  ``store.stats.to_dict()`` is uniform across engines.
* Stores are context managers; leaving the ``with`` block calls
  :meth:`~KVStore.close`, after which operations raise
  :class:`~repro.errors.ClosedError`.
"""

from __future__ import annotations

from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from .core.stats import TreeStats

#: One batched write as every engine consumes it: (op, key, value-or-None)
#: where ``op`` is ``"put"`` (value required) or ``"delete"``.
BatchOp = Tuple[str, str, Optional[str]]


@runtime_checkable
class KVStore(Protocol):
    """The key-value surface shared by every storage engine.

    Runtime-checkable: ``isinstance(obj, KVStore)`` verifies the full
    method surface is present (signatures are enforced statically, not at
    ``isinstance`` time — that is the usual :mod:`typing` protocol
    semantics).
    """

    def put(self, key: str, value: str) -> None:
        """Insert or update one key."""
        ...

    def get(self, key: str) -> Optional[str]:
        """Point lookup; ``None`` when the key is absent."""
        ...

    def delete(self, key: str) -> None:
        """Logically delete one key."""
        ...

    def scan(
        self, lo: str, hi: str, limit: Optional[int] = None
    ) -> List[Tuple[str, str]]:
        """Key-sorted live pairs in ``[lo, hi)``, at most ``limit``."""
        ...

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Apply several writes as one group commit (validated up front)."""
        ...

    def flush(self) -> None:
        """Force buffered writes to disk."""
        ...

    def close(self) -> None:
        """Release resources; further operations raise ``ClosedError``."""
        ...

    def backpressure(self) -> Dict[str, object]:
        """Non-blocking admission snapshot with a ``state`` key."""
        ...

    @property
    def stats(self) -> TreeStats:
        """Engine counters (a merged rollup for aggregating stores)."""
        ...

    def __enter__(self) -> "KVStore":
        ...

    def __exit__(self, *exc_info: object) -> None:
        ...


__all__ = ["KVStore", "BatchOp"]
