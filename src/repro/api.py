"""The unified store protocol: one contract, many engines.

Every storage engine in this repository — the single
:class:`~repro.core.tree.LSMTree`, the range-partitioned forest
(:class:`~repro.partition.PartitionedStore`), the parallel sharded
engine (:class:`~repro.shard.ShardedStore`), its replicated wrapper
(:class:`~repro.replication.ReplicatedStore`), and the cluster node
store (:class:`~repro.cluster.NodeStore`) — exposes the same key-value
surface. :class:`KVStore` names that surface as a runtime-checkable
:class:`typing.Protocol`, so serving layers, benchmarks, and tests can be
written once against the protocol and run unmodified over any engine:

    >>> from repro import KVStore, LSMTree
    >>> isinstance(LSMTree(), KVStore)
    True

The contract, beyond the method signatures (**v2** — transactional):

* ``scan`` returns key-sorted pairs; ``limit`` (when not ``None``) caps
  the number of pairs returned, counted after tombstone resolution.
  ``allow_partial=True`` asks aggregating stores to skip unavailable
  routing units instead of failing the whole scan; the result is then a
  :class:`PartialScanResult` whose ``partial``/``skipped_shards`` say
  what was missed. Engines with a single routing unit accept the flag
  and always return a complete result.
* ``snapshot()`` captures a store-wide consistent read point — one
  sequence number per routing unit, taken so that no atomic batch is
  split across the capture — and returns a :class:`Snapshot` handle.
  ``get``/``scan`` accept ``at=`` (a handle or its wire ``token``) and
  answer as of that point: a multi-shard scan at a snapshot either sees
  *all* of a cross-shard batch or none of it. Handles are context
  managers; release them (``close()``) so the engine can stop pinning
  overwritten versions. A snapshot the engine can no longer serve
  (versions compacted away, pin budget exhausted) raises
  :class:`~repro.errors.SnapshotExpiredError` rather than answering
  inconsistently.
* ``write_batch`` validates every op before applying any, and is atomic
  **store-wide**: a single tree commits the whole batch under one mutex
  acquisition with one WAL sync; a sharded store commits a batch that
  spans shards through two-phase commit (per-shard PREPARE records plus
  a coordinator decision record) so a crash mid-batch deterministically
  rolls the whole batch forward or back on recovery. A batch whose keys
  all land on one shard takes the plain single-sync fast path — the
  coordinator is never involved. A cross-shard batch rolled back before
  its commit point raises :class:`~repro.errors.TxnConflictError` (and
  nothing was applied anywhere).
* ``backpressure`` never blocks and always carries a ``state`` key with
  one of ``"ok"``, ``"slowdown"``, or ``"stop"``.
* ``stats`` is a :class:`~repro.core.stats.TreeStats` — aggregating
  stores return a merged rollup (:meth:`TreeStats.merged`), so
  ``store.stats.to_dict()`` is uniform across engines.
* Stores are context managers; leaving the ``with`` block calls
  :meth:`~KVStore.close`, after which operations raise
  :class:`~repro.errors.ClosedError`.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from .core.stats import TreeStats

#: One batched write as every engine consumes it: (op, key, value-or-None)
#: where ``op`` is ``"put"`` (value required) or ``"delete"``.
BatchOp = Tuple[str, str, Optional[str]]


class Snapshot:
    """A store-wide consistent read point: one seqno per routing unit.

    ``seqnos`` maps each routing unit (shard index; ``0`` for a single
    tree) to the highest sequence number visible at capture time. The
    capture is atomic with respect to cross-shard batches — the store
    serializes ``snapshot()`` against its transaction coordinator — so a
    read at the snapshot sees every atomic batch entirely or not at all.

    Handles serialize to a ``token`` (``"shard:seq,shard:seq,..."``) so
    they can cross the wire (the ``SNAP`` verb) and come back via
    ``at=``; :meth:`from_token` parses one. A handle taken directly from
    a store owns version pins inside the engine — release it with
    :meth:`close` (or a ``with`` block) when done. Handles rebuilt from
    a token carry no pins of their own; they are only valid while the
    originating handle (server-side, for wire snapshots) is alive.
    """

    __slots__ = ("seqnos", "_release", "_closed")

    def __init__(
        self,
        seqnos: Mapping[int, int],
        release: Optional[Callable[[], None]] = None,
    ) -> None:
        self.seqnos: Dict[int, int] = dict(seqnos)
        self._release = release
        self._closed = False

    @property
    def token(self) -> str:
        """Wire form: ``"unit:seq"`` pairs joined by commas, unit-sorted."""
        return ",".join(
            f"{unit}:{seq}" for unit, seq in sorted(self.seqnos.items())
        )

    @classmethod
    def from_token(cls, token: str) -> "Snapshot":
        """Parse a :attr:`token`; raises :class:`ValueError` on malformed
        input (the serving layer maps that to ``ERR BADREQ``)."""
        seqnos: Dict[int, int] = {}
        for part in token.split(","):
            unit_text, sep, seq_text = part.partition(":")
            if not sep:
                raise ValueError(f"malformed snapshot token part {part!r}")
            seqnos[int(unit_text)] = int(seq_text)
        if not seqnos:
            raise ValueError("empty snapshot token")
        return cls(seqnos)

    @classmethod
    def coerce(cls, at: "Union[Snapshot, str]") -> "Snapshot":
        """Accept a handle or its token string; anything else is a
        :class:`TypeError`."""
        if isinstance(at, Snapshot):
            return at
        if isinstance(at, str):
            return cls.from_token(at)
        raise TypeError(
            f"at= expects a Snapshot or its token string, got {type(at).__name__}"
        )

    def seqno_for(self, unit: int) -> int:
        """The seqno pinned for ``unit``; a unit the snapshot does not
        cover (e.g. a shard quarantined at capture time) raises
        :class:`~repro.errors.SnapshotExpiredError`."""
        try:
            return self.seqnos[unit]
        except KeyError:
            from .errors import SnapshotExpiredError

            raise SnapshotExpiredError(
                f"snapshot does not cover routing unit {unit}"
            ) from None

    def close(self) -> None:
        """Release the engine-side version pins. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._release is not None:
            self._release()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot({self.token!r})"


class PartialScanResult(List[Tuple[str, str]]):
    """Scan result that names the routing units it could not reach.

    A plain ``list`` of key-sorted pairs (drop-in for the normal scan
    return) with two extra attributes: ``skipped_shards`` — the routing
    units that were unavailable and therefore contributed nothing — and
    ``partial`` (true when any were skipped). Returned by ``scan`` when
    the caller passed ``allow_partial=True``; engines with one routing
    unit return it with ``skipped_shards == []``.
    """

    __slots__ = ("skipped_shards",)

    def __init__(
        self,
        pairs: Optional[List[Tuple[str, str]]] = None,
        skipped_shards: Optional[List[int]] = None,
    ) -> None:
        super().__init__(pairs or [])
        #: Routing units that contributed nothing because they were
        #: unavailable when the scan fanned out.
        self.skipped_shards: List[int] = list(skipped_shards or [])

    @property
    def partial(self) -> bool:
        """Whether any routing unit was skipped."""
        return bool(self.skipped_shards)


#: What ``get``/``scan`` accept as a read point: a handle or its token.
SnapshotLike = Union[Snapshot, str]


@runtime_checkable
class KVStore(Protocol):
    """The key-value surface shared by every storage engine (v2).

    Runtime-checkable: ``isinstance(obj, KVStore)`` verifies the full
    method surface is present (signatures are enforced statically, not at
    ``isinstance`` time — that is the usual :mod:`typing` protocol
    semantics).
    """

    def put(self, key: str, value: str) -> None:
        """Insert or update one key."""
        ...

    def get(
        self, key: str, at: Optional[SnapshotLike] = None
    ) -> Optional[str]:
        """Point lookup; ``None`` when the key is absent. ``at=`` reads
        as of a snapshot instead of the latest state."""
        ...

    def delete(self, key: str) -> None:
        """Logically delete one key."""
        ...

    def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        *,
        at: Optional[SnapshotLike] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Key-sorted live pairs in ``[lo, hi)``, at most ``limit``.

        ``at=`` reads at a snapshot; ``allow_partial=True`` skips
        unavailable routing units and returns a
        :class:`PartialScanResult`.
        """
        ...

    def snapshot(self) -> Snapshot:
        """Capture a store-wide consistent read point."""
        ...

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Apply several writes as one atomic group commit (validated up
        front; cross-shard batches go through two-phase commit)."""
        ...

    def flush(self) -> None:
        """Force buffered writes to disk."""
        ...

    def close(self) -> None:
        """Release resources; further operations raise ``ClosedError``."""
        ...

    def backpressure(self) -> Dict[str, object]:
        """Non-blocking admission snapshot with a ``state`` key."""
        ...

    @property
    def stats(self) -> TreeStats:
        """Engine counters (a merged rollup for aggregating stores)."""
        ...

    def __enter__(self) -> "KVStore":
        ...

    def __exit__(self, *exc_info: object) -> None:
        ...


__all__ = [
    "KVStore",
    "BatchOp",
    "Snapshot",
    "SnapshotLike",
    "PartialScanResult",
]
