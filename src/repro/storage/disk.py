"""A simulated block device with page-granular I/O accounting.

The tutorial's quantitative claims — write amplification, pages read per
lookup, stall durations — are statements about *I/O counts and bandwidth*,
not about any particular SSD. :class:`SimulatedDisk` charges every read and
write at page granularity, tags each transfer with the operation that caused
it (flush, compaction, lookup, ...), and advances a simulated clock using a
simple ``latency = request_overhead + pages / bandwidth`` model. This makes
every experiment deterministic and hardware-independent while exposing
exactly the quantities the paper reasons about.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict

#: Default page (block) size in bytes, matching common 4 KiB device pages.
DEFAULT_PAGE_SIZE = 4096


def pages_for(nbytes: int, page_size: int) -> int:
    """Number of whole pages needed to hold ``nbytes`` (at least one)."""
    if nbytes <= 0:
        return 0
    return math.ceil(nbytes / page_size)


@dataclass
class IOCounters:
    """Read/write totals, overall and broken down by cause tag."""

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    reads_by_cause: Dict[str, int] = field(default_factory=dict)
    writes_by_cause: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "IOCounters":
        """Deep copy, for before/after deltas in benchmarks."""
        return IOCounters(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            reads_by_cause=dict(self.reads_by_cause),
            writes_by_cause=dict(self.writes_by_cause),
        )

    def delta(self, earlier: "IOCounters") -> "IOCounters":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOCounters(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            reads_by_cause={
                cause: count - earlier.reads_by_cause.get(cause, 0)
                for cause, count in self.reads_by_cause.items()
            },
            writes_by_cause={
                cause: count - earlier.writes_by_cause.get(cause, 0)
                for cause, count in self.writes_by_cause.items()
            },
        )


@dataclass(frozen=True)
class DiskProfile:
    """Latency/bandwidth parameters of the simulated device.

    The defaults approximate a SATA SSD. Two pre-built profiles are exposed
    as :meth:`ssd` and :meth:`hdd`; the distinction matters for experiments
    (e.g. WiscKey is "SSD-conscious", §2.2.2).

    Attributes:
        page_size: Bytes per page; all transfers round up to whole pages.
        read_page_us: Microseconds to transfer one page on a read.
        write_page_us: Microseconds to transfer one page on a write.
        read_overhead_us: Fixed per-request read setup cost (seek/queue).
        write_overhead_us: Fixed per-request write setup cost.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    read_page_us: float = 8.0
    write_page_us: float = 10.0
    read_overhead_us: float = 60.0
    write_overhead_us: float = 60.0

    @staticmethod
    def ssd(page_size: int = DEFAULT_PAGE_SIZE) -> "DiskProfile":
        """A flash profile: cheap random access, reads cheaper than writes."""
        return DiskProfile(page_size, 8.0, 10.0, 60.0, 60.0)

    @staticmethod
    def hdd(page_size: int = DEFAULT_PAGE_SIZE) -> "DiskProfile":
        """A spinning-disk profile: large per-request (seek) overhead."""
        return DiskProfile(page_size, 30.0, 30.0, 8000.0, 8000.0)

    def read_us(self, pages: int) -> float:
        """Simulated latency of one read request of ``pages`` pages."""
        return self.read_overhead_us + pages * self.read_page_us

    def write_us(self, pages: int) -> float:
        """Simulated latency of one write request of ``pages`` pages."""
        return self.write_overhead_us + pages * self.write_page_us


class SimulatedDisk:
    """Accounting-only block device shared by every on-disk structure.

    The disk stores no data itself — SSTables keep their payloads in memory —
    it only *meters* transfers. Components call :meth:`read` / :meth:`write`
    with a byte count and a ``cause`` tag; the disk rounds to pages, bumps
    counters, and advances the simulated clock.

    One device is shared by the foreground path and, in background mode,
    the flush/compaction workers; charging methods serialize on an internal
    lock so counters and the clock stay consistent under concurrency.
    """

    def __init__(self, profile: DiskProfile | None = None) -> None:
        self.profile = profile or DiskProfile.ssd()
        self.counters = IOCounters()
        self._now_us = 0.0
        self._lock = threading.Lock()

    @property
    def page_size(self) -> int:
        """Page size in bytes, taken from the device profile."""
        return self.profile.page_size

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    def read(self, nbytes: int, cause: str = "other") -> int:
        """Charge one read request of ``nbytes`` bytes; returns pages read."""
        pages = pages_for(nbytes, self.page_size)
        if pages == 0:
            return 0
        with self._lock:
            counters = self.counters
            counters.pages_read += pages
            counters.bytes_read += nbytes
            counters.read_requests += 1
            counters.reads_by_cause[cause] = (
                counters.reads_by_cause.get(cause, 0) + pages
            )
            self._now_us += self.profile.read_us(pages)
        return pages

    def read_pages(self, pages: int, cause: str = "other") -> int:
        """Charge one read request of a whole number of pages."""
        return self.read(pages * self.page_size, cause)

    def write(self, nbytes: int, cause: str = "other") -> int:
        """Charge one write request of ``nbytes`` bytes; returns pages."""
        pages = pages_for(nbytes, self.page_size)
        if pages == 0:
            return 0
        with self._lock:
            counters = self.counters
            counters.pages_written += pages
            counters.bytes_written += nbytes
            counters.write_requests += 1
            counters.writes_by_cause[cause] = (
                counters.writes_by_cause.get(cause, 0) + pages
            )
            self._now_us += self.profile.write_us(pages)
        return pages

    def advance(self, micros: float) -> None:
        """Advance the simulated clock without any transfer (CPU time)."""
        if micros < 0:
            raise ValueError("time cannot move backwards")
        with self._lock:
            self._now_us += micros

    def reset(self) -> None:
        """Zero all counters and the clock; device profile is kept."""
        with self._lock:
            self.counters = IOCounters()
            self._now_us = 0.0
