"""Checkpoint/restore: durable snapshots of the tree's on-disk state.

The WAL (:mod:`repro.core.wal`) covers the *buffered* entries; this module
covers the rest of a restart: serializing every SSTable and the level
manifest to real files and rebuilding the tree from them. Together they
give the engine the full durability story a production store has —
checkpoint + WAL replay == crash recovery.

On-disk layout of a checkpoint directory::

    MANIFEST.json          # config, seqno high-water mark, level structure
    tables/<n>.sst         # one binary file per SSTable

SSTable file format, version 3 (little-endian)::

    magic "RSST"  | u32 version | u32 entry_count | u32 range_tombstone_count
    entry block (columnar, see repro.core.entry.pack_entries):
        per entry: u16 key_len | i32 value_len (-1 = tombstone) |
                   u64 seqno | u8 kind | f64 stamp_us
        then the string heap: key bytes, value bytes, entry after entry
    per range tombstone: u16 lo_len | u16 hi_len | u64 seqno | f64 stamp_us |
               lo bytes | hi bytes
    u32 crc32 of everything above

The columnar entry block lets a whole table be encoded/decoded with a
handful of batched ``struct`` calls instead of one pack/unpack per entry.
Version 2 files (fixed fields and strings interleaved per entry) remain
readable; new checkpoints always write version 3.

Fence pointers and Bloom filters are rebuilt at load time (they are derived
data), exactly as real engines rebuild/reload auxiliary blocks on open.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from ..core.config import LSMConfig
from ..core.entry import Entry, EntryKind, pack_entries, unpack_entries
from ..core.level import Level
from ..core.merge_operator import MergeOperator
from ..core.range_tombstone import RangeTombstone
from ..core.run import SortedRun
from ..core.sstable import SSTable
from ..core.tree import LSMTree
from ..core.wal import WriteAheadLog
from ..errors import CorruptionError
from ..faults.registry import fault_point
from .disk import SimulatedDisk

_MAGIC = b"RSST"
_VERSION = 3
#: Versions ``_decode_table`` accepts; only ``_VERSION`` is ever written.
_SUPPORTED_VERSIONS = (2, 3)
_HEADER = struct.Struct("<4sIII")
_ENTRY_FIXED = struct.Struct("<HiQBd")
_TOMBSTONE_FIXED = struct.Struct("<HHQd")


def _encode_table(table: SSTable) -> bytes:
    chunks: List[bytes] = [
        _HEADER.pack(
            _MAGIC, _VERSION, table.entry_count, len(table.range_tombstones)
        ),
        pack_entries(list(table.iter_entries())),
    ]
    for tombstone in table.range_tombstones:
        lo_bytes = tombstone.lo.encode("utf-8")
        hi_bytes = tombstone.hi.encode("utf-8")
        chunks.append(
            _TOMBSTONE_FIXED.pack(
                len(lo_bytes), len(hi_bytes), tombstone.seqno,
                tombstone.stamp_us,
            )
        )
        chunks.append(lo_bytes)
        chunks.append(hi_bytes)
    payload = b"".join(chunks)
    return payload + struct.pack("<I", zlib.crc32(payload))


def _decode_table(
    blob: bytes,
    path: Optional[str] = None,
) -> Tuple[List[Entry], List[RangeTombstone]]:
    if len(blob) < _HEADER.size + 4:
        raise CorruptionError(
            "SSTable file truncated", path=path, byte_offset=len(blob)
        )
    payload, crc_bytes = blob[:-4], blob[-4:]
    expected = struct.unpack("<I", crc_bytes)[0]
    actual = zlib.crc32(payload)
    if actual != expected:
        raise CorruptionError(
            "SSTable file failed checksum",
            path=path,
            byte_offset=len(payload),
            expected_crc=expected,
            actual_crc=actual,
        )
    magic, version, count, tombstone_count = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise CorruptionError("not an SSTable file", path=path, byte_offset=0)
    if version not in _SUPPORTED_VERSIONS:
        raise CorruptionError(
            f"unsupported SSTable version {version}", path=path
        )
    offset = _HEADER.size
    entries: List[Entry]
    if version >= 3:
        try:
            entries, consumed = unpack_entries(payload, count, offset)
        except (ValueError, struct.error) as exc:
            raise CorruptionError(
                "SSTable entry block failed to decode",
                path=path,
                byte_offset=offset,
            ) from exc
        offset += consumed
    else:
        entries = []
        for _ in range(count):
            key_len, value_len, seqno, kind, stamp = _ENTRY_FIXED.unpack_from(
                payload, offset
            )
            offset += _ENTRY_FIXED.size
            key = payload[offset : offset + key_len].decode("utf-8")
            offset += key_len
            if value_len >= 0:
                value: Optional[str] = payload[
                    offset : offset + value_len
                ].decode("utf-8")
                offset += value_len
            else:
                value = None
            entries.append(Entry(key, value, seqno, EntryKind(kind), stamp))
    tombstones: List[RangeTombstone] = []
    for _ in range(tombstone_count):
        lo_len, hi_len, seqno, stamp = _TOMBSTONE_FIXED.unpack_from(
            payload, offset
        )
        offset += _TOMBSTONE_FIXED.size
        lo = payload[offset : offset + lo_len].decode("utf-8")
        offset += lo_len
        hi = payload[offset : offset + hi_len].decode("utf-8")
        offset += hi_len
        tombstones.append(RangeTombstone(lo, hi, seqno, stamp))
    return entries, tombstones


def _clear_stale_temporaries(directory: str, tables_dir: str) -> None:
    """Remove ``*.tmp`` leftovers of a checkpoint that crashed mid-write.

    Safe at any time: a ``.tmp`` file is by construction uncommitted — the
    manifest never references one, so deleting it cannot lose covered data.
    """
    candidates = [os.path.join(directory, "MANIFEST.json.tmp")]
    if os.path.isdir(tables_dir):
        candidates.extend(
            os.path.join(tables_dir, name)
            for name in os.listdir(tables_dir)
            if name.endswith(".tmp")
        )
    for path in candidates:
        if os.path.exists(path):
            os.remove(path)


def checkpoint(tree: LSMTree, directory: str) -> Dict[str, int]:
    """Write a full snapshot of the tree's disk state to ``directory``.

    The active and immutable buffers are flushed first so the checkpoint
    plus an empty WAL is the complete database. Returns a small summary
    (tables and bytes written) for logging.

    Crash-safe ordering: each SSTable is written to a ``.tmp`` file and
    atomically renamed; the manifest referencing them is committed last,
    also via tmp+rename; only then are checkpoint-covered WAL segments
    pruned (with ``wal_preserve_segments``). A crash anywhere leaves
    either the previous checkpoint fully intact or the new one fully
    committed — never a manifest pointing at missing tables, never a
    pruned segment that the surviving manifest does not cover. Stale
    ``.tmp`` files from an earlier crashed checkpoint are cleared first.
    """
    tree.flush()
    tables_dir = os.path.join(directory, "tables")
    os.makedirs(tables_dir, exist_ok=True)
    _clear_stale_temporaries(directory, tables_dir)

    table_count = 0
    byte_count = 0
    manifest_levels = []
    for level in tree.levels:
        level_runs = []
        for run in level.runs:
            run_tables = []
            for table in run.tables:
                filename = f"{table.table_id}.sst"
                blob = _encode_table(table)
                final_path = os.path.join(tables_dir, filename)
                temporary = final_path + ".tmp"
                with open(temporary, "wb") as handle:
                    handle.write(blob)
                fault_point(
                    "ckpt.table.tmp", path=temporary, tail_bytes=len(blob)
                )
                os.replace(temporary, final_path)
                fault_point("ckpt.table.done", path=final_path)
                run_tables.append(filename)
                table_count += 1
                byte_count += len(blob)
            level_runs.append(run_tables)
        manifest_levels.append(level_runs)

    manifest = {
        "version": _VERSION,
        "config": dataclasses.asdict(tree.config),
        "next_seqno": tree.seqno,
        "now_us": tree.disk.now_us,
        "levels": manifest_levels,
    }
    manifest_path = os.path.join(directory, "MANIFEST.json")
    temporary = manifest_path + ".tmp"
    blob = json.dumps(manifest)
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(blob)
    fault_point("ckpt.manifest.tmp", path=temporary, tail_bytes=len(blob))
    os.replace(temporary, manifest_path)  # atomic commit of the checkpoint
    fault_point("ckpt.manifest.done", path=manifest_path)
    _prune_wal_segments(tree)
    return {"tables": table_count, "bytes": byte_count}


def _prune_wal_segments(tree: LSMTree) -> None:
    """Delete WAL segments a just-committed checkpoint fully covers.

    Only preserved (already-flushed) segments qualify — the active
    segment backs the post-checkpoint writes and always survives. Runs
    after the manifest rename, so a crash mid-prune leaves extra
    segments whose replay is idempotent (their entries' seqnos are below
    the manifest's ``next_seqno`` and are filtered on recovery).
    """
    for path in tree.flushed_wal_segments():
        fault_point("ckpt.wal_prune", path=path)
        if os.path.exists(path):
            os.remove(path)


def restore(
    directory: str,
    disk: Optional[SimulatedDisk] = None,
    merge_operator: Optional["MergeOperator"] = None,
) -> LSMTree:
    """Rebuild a tree from a checkpoint directory.

    Restoring does not charge flush/compaction I/O (the data was already
    on "disk"); fence pointers and filters are rebuilt in memory.

    Raises:
        CorruptionError: On a missing/invalid manifest or table file.
    """
    manifest_path = os.path.join(directory, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        raise CorruptionError(
            f"no MANIFEST.json under {directory}", path=manifest_path
        )
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CorruptionError(
                "manifest is not valid JSON",
                path=manifest_path,
                byte_offset=exc.pos,
            ) from exc
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise CorruptionError(
            "unsupported manifest version", path=manifest_path
        )

    config_fields = dict(manifest["config"])
    config_fields["extras"] = tuple(
        tuple(item) for item in config_fields.get("extras", [])
    )
    config = LSMConfig(**config_fields)
    tree = LSMTree(config, disk=disk, merge_operator=merge_operator)
    tree._next_seqno = int(manifest["next_seqno"])

    tables_dir = os.path.join(directory, "tables")
    for level_index, level_runs in enumerate(manifest["levels"]):
        level = Level(level_index, config.level_capacity_bytes(level_index))
        for run_tables in level_runs:
            tables = []
            for filename in run_tables:
                path = os.path.join(tables_dir, filename)
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError as exc:
                    raise CorruptionError(
                        f"manifest references missing table file {filename}",
                        path=path,
                    ) from exc
                entries, tombstones = _decode_table(blob, path=path)
                tables.append(
                    SSTable.build(
                        entries,
                        disk=tree.disk,
                        block_bytes=config.block_bytes,
                        fence_pointers=config.fence_pointers,
                        filter_bits_per_key=config.filter_bits_per_key,
                        charge_io=False,
                        range_tombstones=tombstones,
                    )
                )
            if tables:
                level.add_run_oldest(SortedRun(tables))
        tree.levels.append(level)
    return tree


def recover_full(
    config: Optional[LSMConfig],
    wal_dir: str,
    checkpoint_dir: str,
    disk: Optional[SimulatedDisk] = None,
    merge_operator: Optional["MergeOperator"] = None,
) -> LSMTree:
    """Full restart: latest committed checkpoint plus WAL replay.

    The complete crash-recovery path the consistency sweep exercises:

    1. If ``checkpoint_dir`` holds a committed ``MANIFEST.json``, restore
       it (the manifest's stored config is authoritative; ``config`` is
       only used when no checkpoint exists). The manifest's
       ``next_seqno`` is the high-water mark the checkpoint *covers*.
    2. Replay every WAL segment in ``wal_dir``, re-journaling into a
       fresh segment and skipping entries the checkpoint already covers
       — so replaying segments an interrupted prune left behind is
       idempotent.

    Old segments are not deleted here; the next :func:`checkpoint` prunes
    them once its manifest covers their entries. Recovery itself is
    therefore repeatable: crashing *during* recovery and recovering again
    reaches the same state.
    """
    manifest_path = os.path.join(checkpoint_dir, "MANIFEST.json")
    if not os.path.exists(manifest_path):
        # No committed checkpoint: the WAL is the whole database. (A
        # MANIFEST.json.tmp from a crashed first checkpoint is
        # uncommitted by definition and deliberately ignored.)
        return LSMTree.recover(
            config, wal_dir, disk=disk, merge_operator=merge_operator
        )
    tree = restore(checkpoint_dir, disk=disk, merge_operator=merge_operator)
    covered = tree.seqno
    segments = sorted(
        name
        for name in os.listdir(wal_dir)
        if name.startswith("wal.") and name.endswith(".log")
    )
    tree.attach_wal_dir(wal_dir)
    for name in segments:
        for entry in WriteAheadLog.replay(os.path.join(wal_dir, name)):
            if entry.seqno >= covered:
                tree._ingest_recovered(entry)
    return tree
