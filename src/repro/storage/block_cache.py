"""Block cache with optional compaction-aware prefetch (§2.1.3).

Commercial LSM engines keep recently read data blocks in an in-memory block
cache. Two phenomena from the tutorial are modeled here:

* **Compaction-induced eviction**: compactions rewrite files, so cached
  blocks of the input files become useless the moment the compaction
  commits — "it is rather frequent that the hot data pages are evicted from
  block cache during compactions".
* **Leaper-style predictive prefetch**: a :class:`HeatTracker` remembers
  which key ranges were hot before the compaction, and
  :meth:`BlockCache.prefetch_for` re-populates the cache with the output
  blocks overlapping those ranges, immediately after compaction — the
  mechanism (not the ML predictor) of Leaper.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

#: Cache key: (sstable id, block index within the sstable).
BlockId = Tuple[int, int]


@dataclass
class CacheStats:
    """Hit/miss counters plus eviction breakdown."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions_capacity: int = 0
    evictions_invalidated: int = 0
    prefetched_blocks: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from memory (0 when never probed)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class BlockCache:
    """Byte-capacity LRU cache of data blocks.

    The cache stores no block payloads (the simulated disk meters the I/O);
    it tracks *which* blocks are resident so reads through
    :meth:`~repro.core.sstable.SSTable.get` can be served without charging
    the disk.

    The cache is shared between foreground reads and background
    compactions (which invalidate and prefetch), so every operation
    serializes on an internal lock.

    Args:
        capacity_bytes: Total budget; ``0`` disables the cache (every probe
            misses, nothing is inserted).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._resident: "OrderedDict[BlockId, int]" = OrderedDict()
        self._used_bytes = 0
        self._lock = threading.Lock()

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._resident)

    def probe(self, block: BlockId) -> bool:
        """Look up a block; promotes it on hit. Returns hit/miss."""
        with self._lock:
            if block in self._resident:
                self._resident.move_to_end(block)
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            return False

    def insert(self, block: BlockId, nbytes: int) -> None:
        """Admit a block, evicting LRU residents to fit."""
        if self.capacity_bytes == 0 or nbytes > self.capacity_bytes:
            return
        with self._lock:
            if block in self._resident:
                self._used_bytes -= self._resident[block]
                self._resident.move_to_end(block)
            self._resident[block] = nbytes
            self._used_bytes += nbytes
            self.stats.insertions += 1
            while self._used_bytes > self.capacity_bytes:
                _victim, victim_bytes = self._resident.popitem(last=False)
                self._used_bytes -= victim_bytes
                self.stats.evictions_capacity += 1

    def invalidate_table(self, sstable_id: int) -> int:
        """Drop every resident block of a deleted SSTable.

        Called when compaction retires input files; this is the
        compaction-induced eviction the tutorial describes. Returns the
        number of blocks dropped.
        """
        with self._lock:
            victims = [blk for blk in self._resident if blk[0] == sstable_id]
            for blk in victims:
                self._used_bytes -= self._resident.pop(blk)
                self.stats.evictions_invalidated += 1
            return len(victims)

    def contains(self, block: BlockId) -> bool:
        """Residency check without LRU promotion or stats."""
        return block in self._resident


@dataclass
class _HotRange:
    first_key: str
    last_key: str
    heat: float = 0.0


class HeatTracker:
    """Remembers recently hot key ranges for post-compaction prefetch.

    Every cached-block access records the block's key range with a unit of
    heat; heat decays multiplicatively so that only *recently* hot ranges
    drive prefetch, approximating Leaper's learned predictor with a simple
    frequency counter (see the substitution note in DESIGN.md §2).
    """

    def __init__(self, decay: float = 0.98, max_ranges: int = 512) -> None:
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.max_ranges = max_ranges
        self._ranges: Dict[Hashable, _HotRange] = {}

    def record_access(self, first_key: str, last_key: str) -> None:
        """Add heat to the key range of an accessed block."""
        for hot in self._ranges.values():
            hot.heat *= self.decay
        key = (first_key, last_key)
        hot = self._ranges.get(key)
        if hot is None:
            if len(self._ranges) >= self.max_ranges:
                coldest = min(self._ranges, key=lambda k: self._ranges[k].heat)
                del self._ranges[coldest]
            self._ranges[key] = _HotRange(first_key, last_key, 1.0)
        else:
            hot.heat += 1.0

    def heat_of(self, first_key: str, last_key: str) -> float:
        """Total recorded heat overlapping ``[first_key, last_key]``."""
        return sum(
            hot.heat
            for hot in self._ranges.values()
            if hot.first_key <= last_key and first_key <= hot.last_key
        )

    def hot_ranges(self, min_heat: float = 1.0) -> List[Tuple[str, str]]:
        """Ranges whose decayed heat is at least ``min_heat``."""
        return [
            (hot.first_key, hot.last_key)
            for hot in self._ranges.values()
            if hot.heat >= min_heat
        ]
