"""Simulated storage substrate: disk, block cache, persistence."""

from .block_cache import BlockCache, CacheStats, HeatTracker
from .disk import DEFAULT_PAGE_SIZE, DiskProfile, IOCounters, SimulatedDisk, pages_for

__all__ = [
    "BlockCache",
    "CacheStats",
    "HeatTracker",
    "DEFAULT_PAGE_SIZE",
    "DiskProfile",
    "IOCounters",
    "SimulatedDisk",
    "pages_for",
]
