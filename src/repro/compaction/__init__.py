"""Compaction machinery: the four primitives and their realizations (§2.2)."""

from .dictionary import DICTIONARY, DictionaryEntry, entries_for_system, lookup
from .executor import CompactionExecutor, iter_all_versions, reconcile
from .layouts import (
    BushLayout,
    HybridLayout,
    LayoutPolicy,
    LazyLevelingLayout,
    LevelingLayout,
    TieringLayout,
    make_layout,
)
from .picker import (
    ColdestPicker,
    FilePicker,
    LeastOverlapPicker,
    MostTombstonesPicker,
    OldestPicker,
    RoundRobinPicker,
    make_picker,
)
from .planner import CompactionPlanner, PlanResult, last_data_level
from .primitives import (
    CompactionJob,
    CompactionSpec,
    Granularity,
    Trigger,
    enumerate_design_space,
)

__all__ = [
    "DICTIONARY",
    "DictionaryEntry",
    "lookup",
    "entries_for_system",
    "CompactionExecutor",
    "iter_all_versions",
    "reconcile",
    "LayoutPolicy",
    "LevelingLayout",
    "TieringLayout",
    "LazyLevelingLayout",
    "HybridLayout",
    "BushLayout",
    "make_layout",
    "FilePicker",
    "RoundRobinPicker",
    "LeastOverlapPicker",
    "MostTombstonesPicker",
    "ColdestPicker",
    "OldestPicker",
    "make_picker",
    "CompactionPlanner",
    "PlanResult",
    "last_data_level",
    "CompactionJob",
    "CompactionSpec",
    "Granularity",
    "Trigger",
    "enumerate_design_space",
]
