"""Compaction execution: sort-merge, garbage collection, I/O charging.

"When a level reaches capacity, all or part of its data is sort-merged with
data from the next level with an overlapping key-range" (§2.1.1-D). The
executor takes a planned :class:`~repro.compaction.primitives.CompactionJob`
and:

1. charges the device one sequential read of every input byte,
2. merges the inputs keeping only the latest version per key (§2.1.2),
3. garbage-collects shadowed versions, annihilates single-delete pairs, and
   drops tombstones that have reached the bottommost overlapping level,
4. writes the merged output as new SSTables split at the target file size,
5. splices the level structure and invalidates/prefetches the block cache.

Trivial moves (no overlap in the target) relink the file with no I/O at
all, as LevelDB and RocksDB do.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from ..core.config import LSMConfig
from ..core.entry import Entry, EntryKind
from ..core.level import Level
from ..core.merge_operator import MergeOperator
from ..core.range_tombstone import RangeTombstone, dedupe, max_covering_seqno
from ..core.run import SortedRun
from ..core.sstable import SSTable
from ..core.stats import TreeStats
from ..errors import CompactionError
from ..faults.registry import fault_point
from ..storage.block_cache import BlockCache, HeatTracker
from ..storage.disk import SimulatedDisk
from .primitives import CompactionJob


def iter_all_versions(
    sources: List[Iterator[Entry]],
) -> Iterator[Tuple[str, List[Entry]]]:
    """Group every version of every key across sorted input streams.

    Yields ``(key, versions)`` in ascending key order with versions sorted
    newest-first. Streams must each be sorted by key; across streams keys
    may repeat (that is the point of compaction).
    """
    heap: List[Tuple[str, int, int, Entry, Iterator[Entry]]] = []
    for order, source in enumerate(sources):
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(
                heap, (first.key, -first.seqno, order, first, iterator)
            )
    current_key: Optional[str] = None
    group: List[Entry] = []
    while heap:
        key, _neg, order, entry, iterator = heapq.heappop(heap)
        successor = next(iterator, None)
        if successor is not None:
            heapq.heappush(
                heap, (successor.key, -successor.seqno, order, successor, iterator)
            )
        if key != current_key:
            if current_key is not None:
                yield current_key, group
            current_key = key
            group = []
        group.append(entry)
    if current_key is not None:
        yield current_key, group


def reconcile(
    versions: List[Entry],
    bottommost: bool,
    operator: Optional[MergeOperator] = None,
) -> Tuple[Optional[Entry], int, int]:
    """Decide what one key's merged versions become.

    Args:
        versions: All versions of a key, newest first.
        bottommost: Whether the compaction output lands at the bottommost
            level overlapping this key — only then may tombstones be dropped
            (§2.1.2: entries are "garbage collected only after they are
            compacted with a matching tombstone" at the last level).
        operator: Merge operator for folding ``MERGE`` operand stacks
            (§2.2.6); required when any version is a merge operand.

    Returns:
        ``(survivor, garbage_collected, tombstones_dropped)`` where
        ``survivor`` is ``None`` when nothing is written out.
    """
    newest = versions[0]
    if newest.kind is EntryKind.MERGE:
        return _reconcile_merges(versions, bottommost, operator)
    older = len(versions) - 1
    if newest.kind is EntryKind.PUT:
        return newest, older, 0

    if newest.kind is EntryKind.SINGLE_DELETE:
        # A single-delete annihilates with the first matching older entry
        # as soon as they meet (§2.3.3 / RocksDB Single Delete): neither is
        # written out. With no older version yet, the tombstone survives
        # (unless it already reached the bottom, where it is moot).
        if older:
            return None, older, 1
        if bottommost:
            return None, 0, 1
        return newest, 0, 0

    # Regular DELETE tombstone: shadowed versions are garbage; the
    # tombstone itself survives until the bottommost overlapping level.
    if bottommost:
        return None, older, 1
    return newest, older, 0


def _reconcile_merges(
    versions: List[Entry],
    bottommost: bool,
    operator: Optional[MergeOperator],
) -> Tuple[Optional[Entry], int, int]:
    """Fold a newest-first stack of MERGE operands into its base (§2.2.6)."""
    if operator is None:
        raise CompactionError(
            "MERGE entries reached compaction without a merge operator"
        )
    key = versions[0].key
    operands_newest_first: List[str] = []
    base: Optional[Entry] = None
    consumed = 0
    for version in versions:
        consumed += 1
        if version.kind is EntryKind.MERGE:
            operands_newest_first.append(version.value)  # type: ignore[arg-type]
        else:
            base = version
            break
    oldest_first = list(reversed(operands_newest_first))
    garbage = len(versions) - 1

    if base is not None and base.kind is EntryKind.PUT:
        merged = operator.full_merge(key, base.value, oldest_first)
        survivor = Entry(
            key, merged, versions[0].seqno, EntryKind.PUT, versions[0].stamp_us
        )
        return survivor, garbage, 0

    if base is not None:  # DELETE or SINGLE_DELETE: merge from empty base.
        merged = operator.full_merge(key, None, oldest_first)
        survivor = Entry(
            key, merged, versions[0].seqno, EntryKind.PUT, versions[0].stamp_us
        )
        # The tombstone was applied (and is dropped): the merged PUT
        # shadows anything deeper just as the tombstone did.
        return survivor, garbage, 1

    if bottommost:
        merged = operator.full_merge(key, None, oldest_first)
        survivor = Entry(
            key, merged, versions[0].seqno, EntryKind.PUT, versions[0].stamp_us
        )
        return survivor, garbage, 0

    # No base reachable yet: fold the operands into one partial MERGE.
    combined = operator.partial_merge(key, oldest_first)
    if combined is None:
        raise CompactionError(
            "merge operator must implement partial_merge for baseless "
            "compaction of operand stacks"
        )
    survivor = Entry(
        key, combined, versions[0].seqno, EntryKind.MERGE, versions[0].stamp_us
    )
    return survivor, garbage, 0


class CompactionExecutor:
    """Stateless-per-job executor bound to one tree's device and caches."""

    def __init__(
        self,
        config: LSMConfig,
        disk: SimulatedDisk,
        stats: TreeStats,
        cache: Optional[BlockCache] = None,
        heat: Optional[HeatTracker] = None,
        merge_operator: Optional[MergeOperator] = None,
    ) -> None:
        self.config = config
        self.disk = disk
        self.stats = stats
        self.cache = cache
        self.heat = heat
        self.merge_operator = merge_operator
        #: Optional per-level bits/key override, installed by the tree when
        #: the Monkey filter allocation is configured (§2.1.3).
        self.bits_for_level: Optional[Callable[[int], float]] = None

    # -- public API --------------------------------------------------------

    def execute(
        self, job: CompactionJob, levels: List[Level], bottommost: bool,
        target_leveled: bool,
    ) -> List[SSTable]:
        """Run one compaction job against the level structure.

        Returns the output tables (empty when everything was GC'd or the
        job was a trivial move).
        """
        if self.trivial_move_applies(job, bottommost, target_leveled):
            self.trivial_move(job, levels)
            return list(job.source_tables)

        fault_point("compact.merge", scope=f"L{job.source_level}")
        output_tables = self.merge_job(job, bottommost)
        fault_point("compact.install", scope=f"L{job.source_level}")
        self.install_job(job, levels, output_tables, target_leveled)
        self.refresh_cache(job, output_tables)
        return output_tables

    def trivial_move_applies(
        self, job: CompactionJob, bottommost: bool, target_leveled: bool
    ) -> bool:
        """Whether the job can relink files instead of rewriting them.

        A trivial move must not happen when the job's purpose is garbage
        collection: a bottommost job carrying tombstones has to pass
        through the merge so they are actually dropped (otherwise a
        TTL-triggered bottom rewrite would relink forever without ever
        purging).
        """
        carries_tombstones = any(
            table.tombstone_count or table.range_tombstones
            for table in job.source_tables
        )
        return (
            job.is_trivial_move
            and not job.source_runs
            and target_leveled
            and not (bottommost and carries_tombstones)
        )

    def merge_job(self, job: CompactionJob, bottommost: bool) -> List[SSTable]:
        """Sort-merge the job's inputs into new tables (no level splicing).

        This is the long, I/O-heavy half of a compaction. It only *reads*
        the immutable input tables, so background workers run it without
        holding the tree's manifest lock; :meth:`install_job` then commits
        the result under the lock.
        """
        return self._merge_and_write(job, bottommost)

    def install_job(
        self,
        job: CompactionJob,
        levels: List[Level],
        outputs: List[SSTable],
        target_leveled: bool,
    ) -> None:
        """Atomically swap the job's inputs for ``outputs`` in the levels."""
        self._splice(job, levels, outputs, target_leveled)
        self.stats.incr("compactions")

    def trivial_move(self, job: CompactionJob, levels: List[Level]) -> None:
        """Relink non-overlapping files into the target level, I/O-free.

        Not counted in ``stats.compactions`` — a relink does no merge work.
        """
        self._trivial_move(job, levels)

    # -- internals ----------------------------------------------------------

    def _merge_and_write(
        self, job: CompactionJob, bottommost: bool
    ) -> List[SSTable]:
        self.disk.read(job.input_bytes, cause="compaction")
        self.stats.incr("compaction_bytes_read", job.input_bytes)

        sources: List[Iterator[Entry]] = []
        input_tables: List[SSTable] = list(job.source_tables) + list(
            job.target_tables
        )
        for run in job.source_runs:
            sources.append(run.iter_entries())
            input_tables.extend(run.tables)
        for table in job.source_tables:
            sources.append(table.iter_entries())
        for table in job.target_tables:
            sources.append(table.iter_entries())

        # Range tombstones travelling with the inputs (§2.3.3): they shadow
        # strictly older covered versions during the merge, and either move
        # to the outputs or drop at the bottommost level.
        job_tombstones = dedupe(
            tombstone
            for table in input_tables
            for tombstone in table.range_tombstones
        )

        survivors: List[Entry] = []
        for key, versions in iter_all_versions(sources):
            cover_seqno = max_covering_seqno(job_tombstones, key)
            if cover_seqno >= 0:
                live = [v for v in versions if v.seqno > cover_seqno]
                self.stats.incr(
                    "entries_garbage_collected", len(versions) - len(live)
                )
                versions = live
                if not versions:
                    continue
            survivor, garbage, dropped = reconcile(
                versions, bottommost, self.merge_operator
            )
            self.stats.incr("entries_garbage_collected", garbage)
            if dropped:
                self.stats.incr("tombstones_dropped", dropped)
                self.stats.add_sample(
                    "tombstone_drop_ages_us",
                    self.disk.now_us - versions[0].stamp_us,
                )
            if survivor is not None:
                survivors.append(survivor)

        if bottommost and job_tombstones:
            self.stats.incr("range_tombstones_dropped", len(job_tombstones))
            for tombstone in job_tombstones:
                self.stats.add_sample(
                    "range_tombstone_drop_ages_us",
                    self.disk.now_us - tombstone.stamp_us,
                )
            carried_tombstones: List[RangeTombstone] = []
        else:
            carried_tombstones = job_tombstones

        output_tables = self.build_tables(
            survivors,
            cause="compaction",
            level_index=job.target_level,
            range_tombstones=carried_tombstones,
        )
        self.stats.incr(
            "compaction_bytes_written",
            sum(table.data_bytes for table in output_tables),
        )
        return output_tables

    def build_tables(
        self,
        entries: List[Entry],
        cause: str = "compaction",
        level_index: int = 0,
        range_tombstones: Optional[List[RangeTombstone]] = None,
    ) -> List[SSTable]:
        """Split merged entries into SSTables of about the target file size.

        Range tombstones are *fragmented* at the output file boundaries
        (RocksDB's approach): consecutive files own consecutive key slices
        whose union covers the whole effective range, and each file carries
        only its slice of each tombstone. Fragmenting keeps a later partial
        compaction of one file from dragging the tombstone's entire span
        along. When no point entries survive but tombstones must persist,
        one tombstone-only carrier file is emitted.
        """
        tombstones = list(range_tombstones or [])
        chunks: List[List[Entry]] = []
        chunk: List[Entry] = []
        chunk_bytes = 0
        for entry in entries:
            if chunk and chunk_bytes + entry.size > self.config.target_file_bytes:
                chunks.append(chunk)
                chunk = []
                chunk_bytes = 0
            chunk.append(entry)
            chunk_bytes += entry.size
        if chunk:
            chunks.append(chunk)

        if not tombstones:
            return [
                self._build_one(part, cause, level_index, None)
                for part in chunks
            ]

        # Output-slice boundaries spanning the full effective range.
        span_lo = min(t.lo for t in tombstones)
        span_hi = max(t.hi for t in tombstones)
        if chunks:
            span_lo = min(span_lo, chunks[0][0].key)
            span_hi = max(span_hi, chunks[-1][-1].key + "\x00")
        if not chunks:
            return [
                self._build_one([], cause, level_index, tombstones)
            ]
        boundaries = [span_lo]
        boundaries += [part[0].key for part in chunks[1:]]
        boundaries.append(span_hi)

        outputs: List[SSTable] = []
        for index, part in enumerate(chunks):
            slice_lo, slice_hi = boundaries[index], boundaries[index + 1]
            fragments = []
            for tombstone in tombstones:
                lo = max(tombstone.lo, slice_lo)
                hi = min(tombstone.hi, slice_hi)
                if lo < hi:
                    fragments.append(
                        RangeTombstone(
                            lo, hi, tombstone.seqno, tombstone.stamp_us
                        )
                    )
            outputs.append(
                self._build_one(part, cause, level_index, fragments or None)
            )
        return outputs

    def _build_one(
        self,
        entries: List[Entry],
        cause: str,
        level_index: int,
        range_tombstones: Optional[List[RangeTombstone]] = None,
    ) -> SSTable:
        if self.bits_for_level is not None:
            bits_per_key = self.bits_for_level(level_index)
        else:
            bits_per_key = self.config.filter_bits_per_key
        return SSTable.build(
            entries,
            disk=self.disk,
            block_bytes=self.config.block_bytes,
            fence_pointers=self.config.fence_pointers,
            filter_bits_per_key=bits_per_key,
            cause=cause,
            range_tombstones=range_tombstones,
        )

    def _trivial_move(self, job: CompactionJob, levels: List[Level]) -> None:
        """Relink non-overlapping files into the target level, I/O-free."""
        source = levels[job.source_level]
        target = levels[job.target_level]
        self._drop_source_inputs(job, source)
        if target.runs:
            target.runs[0] = target.runs[0].replace_tables(
                [], job.source_tables
            )
        else:
            target.add_run_newest(SortedRun(job.source_tables))

    def _splice(
        self,
        job: CompactionJob,
        levels: List[Level],
        outputs: List[SSTable],
        target_leveled: bool,
    ) -> None:
        source = levels[job.source_level]
        target = levels[job.target_level]
        self._drop_source_inputs(job, source)

        if target_leveled:
            if target.runs:
                target.runs[0] = target.runs[0].replace_tables(
                    job.target_tables, outputs
                )
                if not target.runs[0].tables:
                    target.runs.pop(0)
            elif outputs:
                target.add_run_newest(SortedRun(outputs))
        else:
            if job.target_tables:
                raise ValueError(
                    "tiered targets never merge with existing runs"
                )
            if outputs:
                target.add_run_newest(SortedRun(outputs))

    @staticmethod
    def _drop_source_inputs(job: CompactionJob, source: Level) -> None:
        for run in job.source_runs:
            source.remove_run(run)
        if job.source_tables:
            drop_ids = {table.table_id for table in job.source_tables}
            remaining_runs: List[SortedRun] = []
            for run in source.runs:
                if any(table.table_id in drop_ids for table in run.tables):
                    new_run = run.replace_tables(job.source_tables, [])
                    if new_run.tables:
                        remaining_runs.append(new_run)
                else:
                    remaining_runs.append(run)
            source.runs = remaining_runs

    def refresh_cache(
        self, job: CompactionJob, outputs: List[SSTable]
    ) -> None:
        """Invalidate retired files; optionally prefetch hot output blocks.

        Dropping the inputs' cached blocks is the compaction-induced
        eviction of §2.1.3; the prefetch pass is the Leaper-style remedy.
        """
        if self.cache is None:
            return
        retired = list(job.source_tables) + list(job.target_tables)
        for run in job.source_runs:
            retired.extend(run.tables)
        for table in retired:
            self.cache.invalidate_table(table.table_id)

        if self.heat is None or not self.config.cache_prefetch:
            return
        for table in outputs:
            for block_index, block in enumerate(table.blocks):
                if self.heat.heat_of(block.first_key, block.last_key) >= 1.0:
                    # Leaper prefetches right after compaction: the read is
                    # charged off the query path, tagged separately.
                    self.disk.read(block.nbytes, cause="prefetch")
                    self.cache.insert(
                        (table.table_id, block_index), block.nbytes
                    )
                    self.cache.stats.prefetched_blocks += 1
