"""Disk data layouts: how many sorted runs each level may stack (§2.2.2).

The layout primitive fixes, per level, the number of runs that may
accumulate before a merge is forced:

* **Leveling** — one run everywhere: greedy merging, lowest read cost,
  highest write amplification (LevelDB).
* **Tiering** — up to ``T`` runs everywhere: cheapest writes, most runs to
  probe (Cassandra's size-tiered compaction).
* **Lazy leveling** — tiered intermediate levels, leveled *last* level
  (Dostoevsky): most of the data sits in the one leveled run, so point
  reads stay cheap while intermediate merges are avoided.
* **Hybrid** — tiered first ``k`` levels, leveled rest (the RocksDB default
  is ``k = 1``: tiering in Level 0 "allows for withstanding bursts").
* **Bush** — run caps *grow* toward shallow levels (LSM-bush): shallow
  levels merge as rarely as possible, the last level stays leveled.
"""

from __future__ import annotations

import abc

from ..core.config import LSMConfig
from ..errors import ConfigError


class LayoutPolicy(abc.ABC):
    """Maps a level index to its allowed number of sorted runs."""

    #: Name matching :data:`repro.core.config.LAYOUT_KINDS`.
    name: str = ""

    @abc.abstractmethod
    def max_runs(self, level_index: int, last_level: int) -> int:
        """Run capacity of on-disk level ``level_index``.

        Args:
            level_index: 0-based on-disk level (0 is the flush target).
            last_level: Index of the deepest level currently holding data;
                layouts that special-case the last level (lazy leveling,
                bush) depend on it.
        """

    def is_leveled(self, level_index: int, last_level: int) -> bool:
        """Whether the level keeps a single run (leveled discipline)."""
        return self.max_runs(level_index, last_level) == 1

    def capacity_allowance(self, level_index: int, last_level: int) -> float:
        """Multiplier on the level's byte capacity before the size trigger.

        1.0 for the classic layouts: their capacities already account for
        their run counts. Layouts whose run caps exceed the size ratio
        (LSM-bush) override this so a level may actually *hold* the runs
        its cap promises.
        """
        return 1.0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LevelingLayout(LayoutPolicy):
    """≤1 run per level (except Level 0, which absorbs flushes)."""

    name = "leveling"

    def __init__(self, level0_run_limit: int) -> None:
        self.level0_run_limit = level0_run_limit

    def max_runs(self, level_index: int, last_level: int) -> int:
        if level_index == 0:
            return self.level0_run_limit
        return 1


class TieringLayout(LayoutPolicy):
    """Up to ``T`` runs per level."""

    name = "tiering"

    def __init__(self, size_ratio: int) -> None:
        self.size_ratio = size_ratio

    def max_runs(self, level_index: int, last_level: int) -> int:
        return self.size_ratio


class LazyLevelingLayout(LayoutPolicy):
    """Dostoevsky: tiered intermediates, leveled last level."""

    name = "lazy_leveling"

    def __init__(self, size_ratio: int) -> None:
        self.size_ratio = size_ratio

    def max_runs(self, level_index: int, last_level: int) -> int:
        if level_index >= last_level:
            return 1
        return self.size_ratio


class HybridLayout(LayoutPolicy):
    """Tiered first ``tiered_levels`` levels, leveled rest (§2.2.2)."""

    name = "hybrid"

    def __init__(self, size_ratio: int, tiered_levels: int) -> None:
        self.size_ratio = size_ratio
        self.tiered_levels = tiered_levels

    def max_runs(self, level_index: int, last_level: int) -> int:
        if level_index < self.tiered_levels:
            return self.size_ratio
        return 1


class BushLayout(LayoutPolicy):
    """LSM-bush-style: run caps double toward shallow levels.

    The cap for level ``i`` is ``T ** 2**(last - i - 1)`` (clamped), so the
    shallowest levels merge extremely rarely while the last level remains a
    single run. This realizes the "arbitrary number of sorted runs in each
    level" continuum point of §2.3.1.
    """

    name = "bush"

    #: Upper clamp on any level's run cap, to keep probing costs finite.
    MAX_RUN_CAP = 64

    def __init__(self, size_ratio: int) -> None:
        self.size_ratio = size_ratio

    def max_runs(self, level_index: int, last_level: int) -> int:
        if level_index >= last_level:
            return 1
        exponent = 2 ** max(0, last_level - level_index - 1)
        try:
            cap = self.size_ratio**exponent
        except OverflowError:
            return self.MAX_RUN_CAP
        return min(self.MAX_RUN_CAP, cap)

    def capacity_allowance(self, level_index: int, last_level: int) -> float:
        """Let a bush level hold the bytes its (huge) run cap implies."""
        return max(
            1.0,
            self.max_runs(level_index, last_level) / self.size_ratio,
        )


def make_layout(config: LSMConfig) -> LayoutPolicy:
    """Build the layout policy an :class:`LSMConfig` names."""
    if config.layout == "leveling":
        return LevelingLayout(config.level0_run_limit)
    if config.layout == "tiering":
        return TieringLayout(config.size_ratio)
    if config.layout == "lazy_leveling":
        return LazyLevelingLayout(config.size_ratio)
    if config.layout == "hybrid":
        return HybridLayout(config.size_ratio, config.hybrid_tiered_levels)
    if config.layout == "bush":
        return BushLayout(config.size_ratio)
    raise ConfigError(f"unknown layout {config.layout!r}")
