"""Compactionary: a dictionary of real systems' compaction strategies.

The tutorial's authors maintain "Compactionary: A Dictionary for LSM
Compactions" [111], which expresses production systems' compaction
strategies in terms of the four primitives of §2.2.4. This module is that
dictionary, executable: each :class:`DictionaryEntry` names a real system's
strategy, cites how it maps onto the primitives, and *instantiates* an
:class:`~repro.core.config.LSMConfig` that makes this engine behave like
it — so any production strategy can be dropped into any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.config import LSMConfig
from .primitives import CompactionSpec, Granularity


@dataclass(frozen=True)
class DictionaryEntry:
    """One real-world compaction strategy, decomposed into primitives.

    Attributes:
        name: Dictionary key (kebab-case).
        system: The production system the strategy ships in.
        description: How the strategy behaves, in a sentence or two.
        layout: Data-layout primitive.
        granularity: Granularity primitive.
        picker: Data-movement primitive (partial compaction only).
        hybrid_tiered_levels: For hybrid layouts, tiered prefix depth.
        tombstone_ttl_us: Non-zero for delete-persistence strategies.
    """

    name: str
    system: str
    description: str
    layout: str
    granularity: Granularity
    picker: str = "round_robin"
    hybrid_tiered_levels: int = 0
    tombstone_ttl_us: float = 0.0

    def spec(self) -> CompactionSpec:
        """The strategy as a :class:`CompactionSpec` (for sweeps)."""
        return CompactionSpec(
            self.layout, self.granularity, self.picker, self.tombstone_ttl_us
        )

    def instantiate(self, base: Optional[LSMConfig] = None) -> LSMConfig:
        """An engine configuration realizing this strategy."""
        base = base or LSMConfig()
        return base.with_overrides(
            layout=self.layout,
            granularity=self.granularity.value,
            picker=self.picker,
            hybrid_tiered_levels=max(1, self.hybrid_tiered_levels),
            tombstone_ttl_us=self.tombstone_ttl_us,
        )


_ENTRIES: Tuple[DictionaryEntry, ...] = (
    DictionaryEntry(
        name="leveldb-leveled",
        system="LevelDB",
        description=(
            "Classic leveled compaction: one run per level, one victim "
            "file at a time chosen by a round-robin key cursor."
        ),
        layout="leveling",
        granularity=Granularity.FILE,
        picker="round_robin",
    ),
    DictionaryEntry(
        name="rocksdb-leveled",
        system="RocksDB (default)",
        description=(
            "Leveled with a tiered Level 0 to absorb flush bursts; partial "
            "compaction picks victims to minimize overlap-driven work "
            "(kMinOverlappingRatio)."
        ),
        layout="hybrid",
        granularity=Granularity.FILE,
        picker="least_overlap",
        hybrid_tiered_levels=1,
    ),
    DictionaryEntry(
        name="rocksdb-universal",
        system="RocksDB (universal)",
        description=(
            "Size-tiered everywhere: whole sorted runs accumulate per "
            "level and merge wholesale, trading read cost for low write "
            "amplification."
        ),
        layout="tiering",
        granularity=Granularity.LEVEL,
    ),
    DictionaryEntry(
        name="cassandra-stcs",
        system="Apache Cassandra (STCS)",
        description=(
            "Size-tiered compaction strategy: merge runs of similar size "
            "when enough of them accumulate."
        ),
        layout="tiering",
        granularity=Granularity.LEVEL,
    ),
    DictionaryEntry(
        name="cassandra-lcs",
        system="Apache Cassandra (LCS)",
        description=(
            "Leveled compaction strategy, adopted from LevelDB for "
            "read-heavier tables."
        ),
        layout="leveling",
        granularity=Granularity.FILE,
        picker="round_robin",
    ),
    DictionaryEntry(
        name="asterixdb-full",
        system="Apache AsterixDB",
        description=(
            "Full-level merges: compact all data in a level at once — "
            "simple, but with periodic heavy I/O bursts (§2.2.3)."
        ),
        layout="leveling",
        granularity=Granularity.LEVEL,
    ),
    DictionaryEntry(
        name="dostoevsky-lazy",
        system="Dostoevsky",
        description=(
            "Lazy leveling: tiered intermediate levels with a leveled last "
            "level — removes superfluous merging while keeping point reads "
            "cheap (§2.2.2)."
        ),
        layout="lazy_leveling",
        granularity=Granularity.LEVEL,
    ),
    DictionaryEntry(
        name="lsm-bush",
        system="LSM-Bush",
        description=(
            "Run caps grow toward shallow levels, merging newest data as "
            "rarely as possible (§2.3.1's layout continuum)."
        ),
        layout="bush",
        granularity=Granularity.LEVEL,
    ),
    DictionaryEntry(
        name="lethe-fade",
        system="Lethe",
        description=(
            "Delete-aware: tombstone-TTL triggers plus tombstone-density "
            "victim picking bound how long deleted data lingers (§2.3.3)."
        ),
        layout="leveling",
        granularity=Granularity.FILE,
        picker="most_tombstones",
        tombstone_ttl_us=60_000.0,
    ),
    DictionaryEntry(
        name="hbase-exploring",
        system="Apache HBase",
        description=(
            "Tiered ('exploring') compaction over store files, merging "
            "similar-sized groups."
        ),
        layout="tiering",
        granularity=Granularity.LEVEL,
    ),
)

#: The dictionary proper: name -> entry.
DICTIONARY: Dict[str, DictionaryEntry] = {
    entry.name: entry for entry in _ENTRIES
}


def lookup(name: str) -> DictionaryEntry:
    """Fetch a strategy by name.

    Raises:
        KeyError: With the list of known names, for discoverability.
    """
    try:
        return DICTIONARY[name]
    except KeyError:
        known = ", ".join(sorted(DICTIONARY))
        raise KeyError(f"unknown strategy {name!r}; known: {known}") from None


def entries_for_system(system_substring: str) -> Tuple[DictionaryEntry, ...]:
    """All entries whose system name contains ``system_substring``."""
    needle = system_substring.lower()
    return tuple(
        entry
        for entry in _ENTRIES
        if needle in entry.system.lower()
    )
