"""Compaction planning: triggers and victim selection (§2.2.3-§2.2.4).

The planner inspects the level structure after every flush/compaction and
decides whether another job is due, combining three triggers:

1. **Run count** — a level stacked more runs than its layout allows.
2. **Level saturation** — a level's bytes exceed its capacity.
3. **Tombstone TTL** — a file holds a tombstone older than the Lethe
   threshold (§2.3.3), when the knob is enabled.

Level 0 is special everywhere: its runs overlap in the key domain (each is
one flushed buffer), so any job draining Level 0 must take *all* of its
runs, exactly as RocksDB merges all L0 files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, List, Optional

from ..core.config import LSMConfig
from ..core.level import Level
from ..core.sstable import SSTable
from ..errors import CompactionError
from .layouts import LayoutPolicy
from .picker import FilePicker
from .primitives import CompactionJob, Granularity, Trigger

_NO_BUSY: FrozenSet[int] = frozenset()


@dataclass
class PlanResult:
    """A job plus the context the executor needs to apply it."""

    job: CompactionJob
    bottommost: bool
    target_leveled: bool


def last_data_level(levels: List[Level]) -> int:
    """Index of the deepest level holding data (1 when the tree is shallow).

    The "last level" drives layouts that special-case it (lazy leveling,
    bush); an empty tree reports 1 so those layouts still shape up sanely.
    """
    deepest = 0
    for level in levels:
        if not level.is_empty:
            deepest = level.index
    return max(1, deepest)


class CompactionPlanner:
    """Stateful planner (the round-robin picker keeps per-level cursors)."""

    def __init__(
        self, config: LSMConfig, layout: LayoutPolicy, picker: FilePicker
    ) -> None:
        self.config = config
        self.layout = layout
        self.picker = picker

    # -- public API ---------------------------------------------------------

    def plan(
        self, levels: List[Level], now_us: float
    ) -> Optional[PlanResult]:
        """The next due job, or ``None`` when the tree satisfies its shape."""
        return self.plan_background(levels, now_us, _NO_BUSY)

    def plan_background(
        self,
        levels: List[Level],
        now_us: float,
        busy: AbstractSet[int],
    ) -> Optional[PlanResult]:
        """The next due job avoiding ``busy`` levels, or ``None``.

        Background compaction workers pass the set of level indices already
        involved in an in-flight job: a level being read or rewritten by
        one worker must not be planned as another job's source or target,
        but *disjoint* jobs may run in parallel (§2.2.3's concurrent
        compactions). With no busy levels this is exactly :meth:`plan`.
        """
        last = last_data_level(levels)
        for level in levels:
            if level.is_empty:
                continue
            if level.index in busy or level.index + 1 in busy:
                continue
            max_runs = self.layout.max_runs(level.index, last)
            if level.run_count > max_runs:
                return self._plan_drain(levels, level, last, Trigger.RUN_COUNT)
            # The byte capacity scales with the layout's capacity
            # allowance: layouts that stack more than T runs per level
            # (LSM-bush's shallow levels) are *meant* to hold
            # proportionally more data before merging — otherwise the
            # size trigger would flatten them back into tiering.
            capacity = self.config.level_capacity_bytes(level.index)
            allowance = self.layout.capacity_allowance(level.index, last)
            if level.data_bytes > capacity * allowance:
                return self._plan_overflow(levels, level, last)
        if self.config.tombstone_ttl_us > 0:
            return self._plan_ttl(levels, last, now_us, busy)
        return None

    def plan_manual(
        self, levels: List[Level], level_index: int
    ) -> Optional[PlanResult]:
        """A full drain of one level, for manual/major compactions."""
        level = levels[level_index]
        if level.is_empty:
            return None
        last = last_data_level(levels)
        return self._plan_drain(levels, level, last, Trigger.MANUAL)

    # -- trigger handlers ---------------------------------------------------

    def _plan_overflow(
        self, levels: List[Level], level: Level, last: int
    ) -> PlanResult:
        """Level saturation: move a file (partial) or the whole level."""
        leveled_here = (
            level.index > 0
            and self.layout.is_leveled(level.index, last)
            and level.run_count == 1
        )
        partial = (
            leveled_here
            and self.config.granularity == Granularity.FILE.value
        )
        if partial:
            return self._plan_file_job(
                levels, level, last, Trigger.LEVEL_SATURATION
            )
        return self._plan_drain(levels, level, last, Trigger.LEVEL_SATURATION)

    def _plan_ttl(
        self,
        levels: List[Level],
        last: int,
        now_us: float,
        busy: AbstractSet[int] = _NO_BUSY,
    ) -> Optional[PlanResult]:
        """Lethe: compact the file whose tombstones exceeded their TTL."""
        ttl = self.config.tombstone_ttl_us
        for level in levels:
            if level.is_empty:
                continue
            if level.index in busy or level.index + 1 in busy:
                continue
            # The bottom level is included too: compacting it one level
            # down (into an empty level, hence bottommost) purges expired
            # tombstones that would otherwise linger forever.
            for run in level.runs:
                for table in run.tables:
                    expired = (
                        table.oldest_tombstone_us is not None
                        and now_us - table.oldest_tombstone_us > ttl
                    )
                    if not expired:
                        continue
                    if (
                        level.index > 0
                        and self.layout.is_leveled(level.index, last)
                        and level.run_count == 1
                    ):
                        return self._plan_file_job(
                            levels,
                            level,
                            last,
                            Trigger.TOMBSTONE_TTL,
                            victim=table,
                        )
                    return self._plan_drain(
                        levels, level, last, Trigger.TOMBSTONE_TTL
                    )
        return None

    # -- job construction ---------------------------------------------------

    def _target_index(self, level: Level) -> int:
        target = level.index + 1
        if target >= self.config.max_levels:
            raise CompactionError(
                f"tree needs more than max_levels={self.config.max_levels} levels"
            )
        return target

    def _plan_drain(
        self, levels: List[Level], level: Level, last: int, trigger: Trigger
    ) -> PlanResult:
        """Merge every run of ``level`` into the next level."""
        target_index = self._target_index(level)
        prospective_last = max(last, target_index)
        target_leveled = self.layout.is_leveled(target_index, prospective_last)
        source_runs = list(level.runs)
        lo = min(run.effective_min_key for run in source_runs)
        hi = max(run.effective_max_key for run in source_runs)
        target_tables = self._overlap_of(levels, target_index, lo, hi)
        if not target_leveled:
            # A tiered target stacks the merged run; no merge with residents.
            target_tables = []
        job = CompactionJob(
            source_level=level.index,
            target_level=target_index,
            source_runs=source_runs,
            source_tables=[],
            target_tables=target_tables,
            trigger=trigger,
        )
        bottommost = self._is_bottommost(levels, job)
        return PlanResult(job, bottommost, target_leveled)

    def _plan_file_job(
        self,
        levels: List[Level],
        level: Level,
        last: int,
        trigger: Trigger,
        victim: Optional[SSTable] = None,
    ) -> PlanResult:
        """Partial compaction: one victim file plus its target overlap."""
        target_index = self._target_index(level)
        prospective_last = max(last, target_index)
        target_leveled = self.layout.is_leveled(target_index, prospective_last)
        next_level = (
            levels[target_index] if target_index < len(levels) else None
        )
        if victim is None:
            victim = self.picker.pick(level, next_level)
        target_tables = (
            self._overlap_of(
                levels,
                target_index,
                victim.effective_min_key,
                victim.effective_max_key,
            )
            if target_leveled
            else []
        )
        job = CompactionJob(
            source_level=level.index,
            target_level=target_index,
            source_runs=[],
            source_tables=[victim],
            target_tables=target_tables,
            trigger=trigger,
        )
        bottommost = self._is_bottommost(levels, job)
        return PlanResult(job, bottommost, target_leveled)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _overlap_of(
        levels: List[Level], target_index: int, lo: str, hi: str
    ) -> List[SSTable]:
        if target_index >= len(levels):
            return []
        target = levels[target_index]
        overlapping: List[SSTable] = []
        for run in target.runs:
            overlapping.extend(run.overlapping_tables(lo, hi))
        return overlapping

    @staticmethod
    def _is_bottommost(levels: List[Level], job: CompactionJob) -> bool:
        """Whether the job's output may drop tombstones.

        True only when (a) no level deeper than the target holds data and
        (b) every target-level table overlapping the job's key range is an
        input of the job — otherwise a dropped tombstone would resurrect an
        older version it was shadowing (§2.1.2).
        """
        for level in levels[job.target_level + 1 :]:
            if not level.is_empty:
                return False
        key_range = job.key_range()
        if key_range is None:
            return True
        lo, hi = key_range
        if job.target_level >= len(levels):
            return True
        included = {table.table_id for table in job.target_tables}
        target = levels[job.target_level]
        for run in target.runs:
            for table in run.overlapping_tables(lo, hi):
                if table.table_id not in included:
                    return False
        return True
