"""Lethe-style delete-aware compaction utilities (§2.3.3).

Lethe "introduces a new family of compaction strategies that persistently
delete logically invalidated data objects within a threshold duration",
which is what privacy regulation requires of out-of-place systems. In this
engine the family is assembled from existing primitives:

* the **tombstone-TTL trigger** — ``LSMConfig.tombstone_ttl_us`` makes the
  planner schedule a compaction for any file whose oldest tombstone has
  outlived the threshold (FADE's delete-persistence trigger);
* the **tombstone-density picker** — ``picker="most_tombstones"`` drives
  partial compaction toward the files that purge the most invalidated data
  per byte moved (KiWi-style delete-aware picking).

This module adds the configuration preset tying the two together and the
measurement helpers experiment E8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.config import LSMConfig
from ..core.level import Level
from ..core.stats import TreeStats, percentile
from ..core.tree import LSMTree


def lethe_config(
    tombstone_ttl_us: float, base: Optional[LSMConfig] = None
) -> LSMConfig:
    """A delete-aware configuration: TTL trigger + density picking.

    Args:
        tombstone_ttl_us: The persistence deadline D of Lethe — every
            delete must become persistent within (roughly) this much
            simulated time.
        base: Configuration to derive from; defaults to ``LSMConfig()``.
    """
    if tombstone_ttl_us <= 0:
        raise ValueError("tombstone_ttl_us must be positive")
    base = base or LSMConfig()
    return base.with_overrides(
        tombstone_ttl_us=tombstone_ttl_us,
        picker="most_tombstones",
        granularity="file",
    )


def find_expired_files(
    levels: List[Level], now_us: float, ttl_us: float
) -> List[Tuple[int, int, float]]:
    """Files currently violating the TTL: (level, table_id, overdue_us).

    A diagnostic mirror of the planner's TTL trigger; an engine keeping up
    with its deadline should report an empty list after every operation.
    """
    expired = []
    for level in levels:
        for run in level.runs:
            for table in run.tables:
                if table.oldest_tombstone_us is None:
                    continue
                age = now_us - table.oldest_tombstone_us
                if age > ttl_us:
                    expired.append((level.index, table.table_id, age - ttl_us))
    return expired


@dataclass(frozen=True)
class DeletePersistenceReport:
    """How promptly deletes became persistent (E8's reported quantities)."""

    deletes_issued: int
    tombstones_purged: int
    max_age_us: float
    p50_age_us: float
    p99_age_us: float
    still_pending: int

    @staticmethod
    def from_tree(tree: LSMTree) -> "DeletePersistenceReport":
        """Summarize a tree's delete-persistence behaviour so far."""
        stats: TreeStats = tree.stats
        ages = stats.tombstone_drop_ages_us
        pending = sum(level.tombstone_count for level in tree.levels)
        return DeletePersistenceReport(
            deletes_issued=stats.deletes + stats.single_deletes,
            tombstones_purged=stats.tombstones_dropped,
            max_age_us=max(ages, default=0.0),
            p50_age_us=percentile(ages, 0.50),
            p99_age_us=percentile(ages, 0.99),
            still_pending=pending,
        )


def delete_persistence_within(
    tree: LSMTree, ttl_us: float, slack: float = 3.0
) -> bool:
    """Whether every purged tombstone met (a slack multiple of) the TTL.

    The trigger fires *after* a tombstone exceeds the threshold and the
    purge itself takes compaction work, so Lethe's guarantee is a bounded
    overshoot, not an exact deadline; ``slack`` encodes the bound.
    """
    report = DeletePersistenceReport.from_tree(tree)
    if report.tombstones_purged == 0:
        return True
    return report.max_age_us <= ttl_us * slack
