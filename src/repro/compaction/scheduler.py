"""I/O scheduling for flushes and compactions: a discrete-event study.

The tutorial's §2.2.3/§2.2.5/§2.3.2 discuss a family of mechanisms that all
answer one question — *when background work runs, who gets the device?*

* naive **FIFO** background compaction: a long compaction ahead of a flush
  blocks ingestion, producing the latency spikes of [100];
* **SILK** [16, 17]: an I/O scheduler that gives flushes and L0→L1
  compactions priority (with preemption) and pushes deeper compactions into
  load valleys, "preventing write stalls";
* **throttling** (Luo & Carey [81]): cap compaction bandwidth so "the
  merging devices operate just at the point prior to saturation", trading
  some compaction progress for predictably stable ingestion.

Since the Python engine is synchronous (its compactions charge the writer
directly), this module models the *asynchronous* variants with a
discrete-event simulation: bursty client writes fill buffers; flush and
compaction jobs compete for a shared device under a pluggable policy; the
output is the write-latency distribution. Experiment E13 compares the
policies.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.stats import percentile


class JobKind(enum.IntEnum):
    """Background job classes, in SILK's priority order (lower = hotter)."""

    FLUSH = 0
    L0_COMPACTION = 1
    DEEP_COMPACTION = 2


@dataclass
class _Job:
    kind: JobKind
    remaining_bytes: float
    created_us: float
    sequence: int


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the scheduling simulation.

    Attributes:
        num_writes: Client writes to simulate.
        entry_bytes: Bytes per write.
        buffer_bytes: Memtable capacity; a full buffer rotates and emits a
            flush job.
        max_immutable_buffers: Rotated buffers that may await flushing
            before ingestion stalls (§2.2.1's multiple buffers).
        l0_trigger_runs: Flushed runs in L0 that trigger an L0→L1 job.
        l0_stall_runs: L0 run count at which ingestion stalls (RocksDB's
            stop trigger).
        cascade_factor: Bytes of deeper compaction debt generated per byte
            an L0→L1 job moves (stands in for the rest of the tree's write
            amplification).
        device_bandwidth: Device throughput in bytes per microsecond.
        burst_rate / quiet_rate: Client write arrival rates (writes/us)
            during bursts and valleys.
        burst_us / quiet_us: Phase lengths of the bursty arrival process.
        seed: Arrival-jitter seed.
    """

    num_writes: int = 20_000
    entry_bytes: int = 128
    buffer_bytes: int = 64 * 1024
    max_immutable_buffers: int = 1
    l0_trigger_runs: int = 4
    l0_stall_runs: int = 8
    cascade_factor: float = 3.0
    #: Sized so the *average* offered work (user bytes × total write amp)
    #: fits comfortably but bursts transiently overload the device — the
    #: regime where scheduling policy decides the tail (SILK's setting).
    device_bandwidth: float = 7.0  # bytes/us
    burst_rate: float = 0.012  # writes/us
    quiet_rate: float = 0.002
    burst_us: float = 200_000.0
    quiet_us: float = 300_000.0
    seed: int = 11


@dataclass
class SimulationResult:
    """Outcome of one policy run."""

    policy: str
    write_latencies_us: List[float] = field(default_factory=list)
    stall_events: int = 0
    total_stall_us: float = 0.0
    finished_jobs: Dict[str, int] = field(default_factory=dict)
    backlog_peak_bytes: float = 0.0
    duration_us: float = 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the write latencies."""
        return percentile(self.write_latencies_us, fraction)

    def summary(self) -> Dict[str, float]:
        """The numbers E13 reports."""
        return {
            "p50_us": self.latency_percentile(0.50),
            "p99_us": self.latency_percentile(0.99),
            "p999_us": self.latency_percentile(0.999),
            "max_us": max(self.write_latencies_us, default=0.0),
            "stalls": float(self.stall_events),
            "stall_us": self.total_stall_us,
            "backlog_peak_mb": self.backlog_peak_bytes / (1 << 20),
        }


class SchedulerPolicy:
    """Decides, from the pending job list, each job's bandwidth share."""

    name = "base"

    def allocate(
        self, jobs: List[_Job], bandwidth: float
    ) -> Dict[int, float]:
        """Map job sequence number -> bytes/us. Must not exceed bandwidth."""
        raise NotImplementedError


class FifoPolicy(SchedulerPolicy):
    """One job at a time, full bandwidth, strict arrival order.

    The naive background thread: a deep compaction that arrived first
    starves a flush behind it — the stall generator of [100].
    """

    name = "fifo"

    def allocate(self, jobs: List[_Job], bandwidth: float) -> Dict[int, float]:
        if not jobs:
            return {}
        first = min(jobs, key=lambda job: job.sequence)
        return {first.sequence: bandwidth}


class SilkPolicy(SchedulerPolicy):
    """SILK: preemptive priority for flushes and L0 jobs.

    The hottest class present takes the whole device; deeper compactions
    run only when nothing hotter is pending (load valleys).
    """

    name = "silk"

    def allocate(self, jobs: List[_Job], bandwidth: float) -> Dict[int, float]:
        if not jobs:
            return {}
        hottest = min(job.kind for job in jobs)
        candidates = [job for job in jobs if job.kind == hottest]
        chosen = min(candidates, key=lambda job: job.sequence)
        return {chosen.sequence: bandwidth}


class ThrottledPolicy(SchedulerPolicy):
    """Compactions capped below saturation; flushes take the rest.

    Luo & Carey's throttling: compaction classes together never exceed
    ``compaction_share`` of the device, so a flush always finds headroom.
    """

    name = "throttled"

    def __init__(self, compaction_share: float = 0.6) -> None:
        if not 0.0 < compaction_share < 1.0:
            raise ValueError("compaction_share must be in (0, 1)")
        self.compaction_share = compaction_share

    def allocate(self, jobs: List[_Job], bandwidth: float) -> Dict[int, float]:
        allocation: Dict[int, float] = {}
        flushes = [job for job in jobs if job.kind is JobKind.FLUSH]
        compactions = [job for job in jobs if job.kind is not JobKind.FLUSH]
        flush_band = bandwidth * (1.0 - self.compaction_share)
        if flushes:
            chosen = min(flushes, key=lambda job: job.sequence)
            allocation[chosen.sequence] = (
                flush_band if compactions else bandwidth
            )
        if compactions:
            chosen = min(compactions, key=lambda job: job.sequence)
            allocation[chosen.sequence] = (
                bandwidth * self.compaction_share if flushes else bandwidth
            )
        return allocation


def make_policy(name: str) -> SchedulerPolicy:
    """Factory: ``fifo`` | ``silk`` | ``throttled``."""
    if name == "fifo":
        return FifoPolicy()
    if name == "silk":
        return SilkPolicy()
    if name == "throttled":
        return ThrottledPolicy()
    raise ValueError(f"unknown scheduler policy {name!r}")


class SchedulerSimulation:
    """Event-driven simulation of ingestion vs. background jobs."""

    def __init__(
        self, config: SimulationConfig, policy: SchedulerPolicy
    ) -> None:
        self.config = config
        self.policy = policy

    # -- arrival process ------------------------------------------------------

    def _arrival_times(self, rng: random.Random) -> List[float]:
        """Poisson arrivals with a square-wave rate (burst / quiet)."""
        cfg = self.config
        times: List[float] = []
        now = 0.0
        while len(times) < cfg.num_writes:
            phase = (now % (cfg.burst_us + cfg.quiet_us))
            rate = cfg.burst_rate if phase < cfg.burst_us else cfg.quiet_rate
            now += -math.log(1.0 - rng.random()) / rate
            times.append(now)
        return times

    # -- main loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate the full write stream; returns latency statistics.

        Deterministic: every randomness flows from a ``random.Random``
        seeded with ``config.seed`` and created afresh per call, so
        repeated ``run()`` calls on one instance — and runs on separate
        instances with equal configs — produce identical results.
        """
        cfg = self.config
        result = SimulationResult(policy=self.policy.name)
        arrivals = self._arrival_times(random.Random(cfg.seed))

        now = 0.0
        next_sequence = 0
        active_fill = 0.0
        immutable = 0
        l0_runs = 0
        jobs: List[_Job] = []
        waiting: List[float] = []  # arrival times of stalled writes
        arrival_index = 0

        def submit(kind: JobKind, nbytes: float) -> None:
            nonlocal next_sequence
            jobs.append(_Job(kind, nbytes, now, next_sequence))
            next_sequence += 1

        def ensure_l0_job() -> None:
            """Keep exactly one L0→L1 job pending while L0 needs draining."""
            l0_pending = any(
                job.kind is JobKind.L0_COMPACTION for job in jobs
            )
            if l0_runs >= cfg.l0_trigger_runs and not l0_pending:
                submit(
                    JobKind.L0_COMPACTION,
                    cfg.l0_trigger_runs * cfg.buffer_bytes * 2.0,
                )

        def stalled() -> bool:
            return immutable > cfg.max_immutable_buffers or (
                l0_runs >= cfg.l0_stall_runs
            )

        def absorb_write(arrival_us: float) -> None:
            """Buffer one write; rotate the memtable when it fills."""
            nonlocal active_fill, immutable
            result.write_latencies_us.append(now - arrival_us)
            active_fill += cfg.entry_bytes
            if active_fill >= cfg.buffer_bytes:
                active_fill = 0.0
                immutable += 1
                submit(JobKind.FLUSH, cfg.buffer_bytes)

        while arrival_index < len(arrivals) or jobs or waiting:
            allocation = self.policy.allocate(jobs, cfg.device_bandwidth)
            # Next job completion under the current allocation.
            next_completion = math.inf
            for job in jobs:
                rate = allocation.get(job.sequence, 0.0)
                if rate > 0:
                    next_completion = min(
                        next_completion, now + job.remaining_bytes / rate
                    )
            next_arrival = (
                arrivals[arrival_index]
                if arrival_index < len(arrivals)
                else math.inf
            )
            next_time = min(next_completion, max(next_arrival, now))
            if next_time is math.inf:
                break
            # Progress running jobs to next_time.
            elapsed = next_time - now
            for job in jobs:
                rate = allocation.get(job.sequence, 0.0)
                job.remaining_bytes -= rate * elapsed
            now = next_time
            result.backlog_peak_bytes = max(
                result.backlog_peak_bytes,
                sum(job.remaining_bytes for job in jobs),
            )

            # Complete finished jobs.
            finished = [job for job in jobs if job.remaining_bytes <= 1e-6]
            for job in finished:
                jobs.remove(job)
                name = job.kind.name.lower()
                result.finished_jobs[name] = (
                    result.finished_jobs.get(name, 0) + 1
                )
                if job.kind is JobKind.FLUSH:
                    immutable -= 1
                    l0_runs += 1
                    ensure_l0_job()
                elif job.kind is JobKind.L0_COMPACTION:
                    moved = cfg.l0_trigger_runs * cfg.buffer_bytes
                    l0_runs = max(0, l0_runs - cfg.l0_trigger_runs)
                    submit(JobKind.DEEP_COMPACTION, moved * cfg.cascade_factor)
                    ensure_l0_job()

            # Drain stalled writes now that state may have changed.
            while waiting and not stalled():
                arrival = waiting.pop(0)
                if arrival > now:
                    waiting.insert(0, arrival)
                    break
                result.stall_events += 1
                result.total_stall_us += now - arrival
                absorb_write(arrival)

            # Admit the arrival that (possibly) defined this event time.
            while (
                arrival_index < len(arrivals)
                and arrivals[arrival_index] <= now
            ):
                arrival = arrivals[arrival_index]
                arrival_index += 1
                if stalled():
                    waiting.append(arrival)
                else:
                    absorb_write(arrival)

        result.duration_us = now
        return result


def compare_policies(
    config: Optional[SimulationConfig] = None,
    policies: Optional[List[str]] = None,
) -> List[SimulationResult]:
    """Run the same arrival trace under each policy (E13's driver)."""
    config = config or SimulationConfig()
    names = policies or ["fifo", "silk", "throttled"]
    return [
        SchedulerSimulation(config, make_policy(name)).run() for name in names
    ]
