"""The four first-order compaction primitives (§2.2.4).

Prior work by the tutorial's authors decomposes *any* compaction strategy
into four orthogonal primitives:

1. **Trigger** — what fires a compaction (:class:`Trigger`).
2. **Data layout** — how many runs a level may stack
   (:mod:`repro.compaction.layouts`).
3. **Granularity** — how much data moves at once (:class:`Granularity`).
4. **Data movement policy** — which data moves
   (:mod:`repro.compaction.picker`).

A point in the design space is a :class:`CompactionSpec`; the engine's
behaviour is fully determined by one. Experiment E9 sweeps this space.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..core.run import SortedRun
from ..core.sstable import SSTable


class Trigger(enum.Enum):
    """Why a compaction job was scheduled."""

    #: A level's payload exceeded its exponentially-growing capacity
    #: (§2.1.1-D) — the classic trigger.
    LEVEL_SATURATION = "level_saturation"
    #: A level stacked more sorted runs than its layout allows (tiering's
    #: trigger; also Level 0's file-count trigger in RocksDB).
    RUN_COUNT = "run_count"
    #: A file held a tombstone older than the Lethe TTL (§2.3.3).
    TOMBSTONE_TTL = "tombstone_ttl"
    #: Explicit request (manual compaction / tests).
    MANUAL = "manual"


class Granularity(enum.Enum):
    """How much data one compaction job moves (§2.2.3)."""

    #: Merge an entire level with the next (AsterixDB-style; heavy I/O
    #: bursts, "prolonged, undesired write stalls").
    LEVEL = "level"
    #: Merge one victim file at a time with its overlap (partial
    #: compaction; "amortizing the I/O cost ... by reducing data movement").
    FILE = "file"


@dataclass(frozen=True)
class CompactionSpec:
    """One point in the compaction design space.

    Attributes:
        layout: Data-layout name (see :data:`repro.core.config.LAYOUT_KINDS`).
        granularity: A :class:`Granularity` member.
        picker: Data-movement policy name (see
            :data:`repro.core.config.PICKER_KINDS`).
        trigger_ttl_us: Non-zero enables the tombstone-TTL trigger.
    """

    layout: str
    granularity: Granularity
    picker: str
    trigger_ttl_us: float = 0.0

    def describe(self) -> str:
        """Short human-readable label used by the E9 sweep report."""
        ttl = f", ttl={self.trigger_ttl_us:.0f}us" if self.trigger_ttl_us else ""
        return (
            f"{self.layout}/{self.granularity.value}/{self.picker}{ttl}"
        )


def enumerate_design_space(
    layouts: Sequence[str] = ("leveling", "tiering", "lazy_leveling", "hybrid"),
    granularities: Sequence[Granularity] = (Granularity.LEVEL, Granularity.FILE),
    pickers: Sequence[str] = ("round_robin", "least_overlap", "most_tombstones"),
) -> Iterator[CompactionSpec]:
    """All combinations of the given primitive choices.

    Picker choice is irrelevant under whole-level granularity, so those
    combinations collapse to one spec each (with ``round_robin`` as the
    placeholder), mirroring how the design space is actually counted.
    """
    for layout, granularity in itertools.product(layouts, granularities):
        if granularity is Granularity.LEVEL:
            yield CompactionSpec(layout, granularity, "round_robin")
        else:
            for picker in pickers:
                yield CompactionSpec(layout, granularity, picker)


@dataclass
class CompactionJob:
    """A planned unit of compaction work.

    Attributes:
        source_level: Index of the level data moves out of.
        target_level: Index of the level data moves into (source + 1).
        source_runs: Whole runs consumed from the source level.
        source_tables: Individual victim files (partial compaction); files
            listed here belong to runs that survive minus these files.
        target_tables: Files of the target level overlapping the inputs.
        trigger: Why the job was scheduled.
    """

    source_level: int
    target_level: int
    source_runs: List[SortedRun]
    source_tables: List[SSTable]
    target_tables: List[SSTable]
    trigger: Trigger

    @property
    def input_bytes(self) -> int:
        """Total payload bytes the job reads."""
        run_bytes = sum(run.data_bytes for run in self.source_runs)
        table_bytes = sum(table.data_bytes for table in self.source_tables)
        target_bytes = sum(table.data_bytes for table in self.target_tables)
        return run_bytes + table_bytes + target_bytes

    @property
    def is_trivial_move(self) -> bool:
        """True when nothing overlaps in the target: the file(s) can be
        relinked without any merge I/O (LevelDB/RocksDB "trivial move")."""
        return not self.target_tables

    def key_range(self) -> Optional[tuple]:
        """(lo, hi) *effective* key range spanned by all inputs (point data
        plus range-tombstone spans), or ``None`` if empty."""
        tables = list(self.source_tables) + list(self.target_tables)
        for run in self.source_runs:
            tables.extend(run.tables)
        if not tables:
            return None
        return (
            min(table.effective_min_key for table in tables),
            max(table.effective_max_key for table in tables),
        )
