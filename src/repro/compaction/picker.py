"""Data-movement policies: which file does partial compaction move? (§2.2.3)

With partial compaction "the design decision on which file(s) to compact
affects ingestion performance". The policies here mirror the ones the
tutorial names:

* ``round_robin`` — cycle through the key space (LevelDB's cursor).
* ``least_overlap`` — pick the file with the least overlapping data in the
  next level, minimizing merge work per byte moved.
* ``most_tombstones`` — pick the file densest in tombstones, purging
  logically invalidated entries early (delete-aware picking; RocksDB's
  compensated size, Lethe's KIWI-style picking).
* ``coldest`` — pick the least recently read file, protecting the block
  cache's hot set from compaction-induced eviction.
* ``oldest`` — pick the oldest file (age-based staleness).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from ..core.level import Level
from ..core.sstable import SSTable
from ..errors import ConfigError


class FilePicker(abc.ABC):
    """Chooses the victim file when a leveled level must shed data."""

    #: Name matching :data:`repro.core.config.PICKER_KINDS`.
    name: str = ""

    @abc.abstractmethod
    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        """Select one victim file from ``level``.

        Args:
            level: Over-capacity leveled level (holds exactly one run).
            next_level: The level the victim merges into, or ``None`` when
                the target does not exist yet.

        Raises:
            ValueError: If the level holds no files.
        """

    @staticmethod
    def _files_of(level: Level) -> List[SSTable]:
        files = [table for run in level.runs for table in run.tables]
        if not files:
            raise ValueError(f"level {level.index} holds no files to pick")
        return files


class RoundRobinPicker(FilePicker):
    """Cycle through the key space with one cursor per level."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursors: Dict[int, str] = {}

    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        files = self._files_of(level)
        cursor = self._cursors.get(level.index, "")
        chosen = next(
            (table for table in files if table.min_key > cursor), files[0]
        )
        self._cursors[level.index] = chosen.min_key
        return chosen


class LeastOverlapPicker(FilePicker):
    """Minimize next-level overlap per byte moved (§2.2.3, [38, 71])."""

    name = "least_overlap"

    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        files = self._files_of(level)

        def overlap_ratio(table: SSTable) -> float:
            if next_level is None:
                return 0.0
            overlap = next_level.overlapping_run_bytes(
                table.min_key, table.max_key
            )
            return overlap / table.data_bytes

        return min(files, key=lambda table: (overlap_ratio(table), table.min_key))


class MostTombstonesPicker(FilePicker):
    """Maximize tombstone density, purging invalidated data early.

    Ties (in particular the all-zero-density case of delete-free phases)
    fall back to least overlap, mirroring RocksDB's compensated-size
    ordering: delete-awareness perturbs, rather than replaces, the
    efficiency-driven choice.
    """

    name = "most_tombstones"

    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        files = self._files_of(level)

        def score(table: SSTable):
            density = table.tombstone_count / max(1, table.entry_count)
            if next_level is None:
                overlap = 0.0
            else:
                overlap = next_level.overlapping_run_bytes(
                    table.min_key, table.max_key
                ) / table.data_bytes
            return (-density, overlap, table.min_key)

        return min(files, key=score)


class ColdestPicker(FilePicker):
    """Move the least recently read file, sparing the cache's hot set."""

    name = "coldest"

    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        files = self._files_of(level)
        return min(
            files, key=lambda table: (table.last_access_us, table.min_key)
        )


class OldestPicker(FilePicker):
    """Move the file written longest ago (staleness-based)."""

    name = "oldest"

    def pick(self, level: Level, next_level: Optional[Level]) -> SSTable:
        files = self._files_of(level)
        return min(files, key=lambda table: (table.created_us, table.min_key))


def make_picker(name: str) -> FilePicker:
    """Build the picker an :class:`~repro.core.config.LSMConfig` names."""
    pickers = {
        "round_robin": RoundRobinPicker,
        "least_overlap": LeastOverlapPicker,
        "most_tombstones": MostTombstonesPicker,
        "coldest": ColdestPicker,
        "oldest": OldestPicker,
    }
    if name not in pickers:
        raise ConfigError(f"unknown picker {name!r}")
    return pickers[name]()
