"""Exception hierarchy for the :mod:`repro` LSM engine.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Programming errors (bad arguments) raise the standard
:class:`ValueError`/:class:`TypeError` instead.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro LSM engine."""


class ClosedError(ReproError):
    """An operation was attempted on a closed tree, WAL, or store."""


class CorruptionError(ReproError):
    """Persistent state (WAL, manifest, or SSTable file) failed validation.

    Carries structured context for diagnosis — which file, which record,
    at what byte offset, and the expected-vs-actual checksum when the
    failure was a CRC mismatch. All fields are optional; whatever is known
    at the raise site is folded into the message and kept as attributes.
    """

    def __init__(
        self,
        message: str,
        *,
        path: "str | None" = None,
        record_index: "int | None" = None,
        byte_offset: "int | None" = None,
        expected_crc: "int | None" = None,
        actual_crc: "int | None" = None,
    ) -> None:
        context = []
        if path is not None:
            context.append(f"path={path}")
        if record_index is not None:
            context.append(f"record={record_index}")
        if byte_offset is not None:
            context.append(f"offset={byte_offset}")
        if expected_crc is not None:
            context.append(f"expected_crc={expected_crc:#010x}")
        if actual_crc is not None:
            context.append(f"actual_crc={actual_crc:#010x}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.path = path
        self.record_index = record_index
        self.byte_offset = byte_offset
        self.expected_crc = expected_crc
        self.actual_crc = actual_crc


class DurabilityError(ReproError):
    """A WAL sync (flush or fsync) failed; the write was *not* acknowledged.

    Follows the fsyncgate contract: once a segment's sync has failed, the
    OS may have silently dropped the dirty pages, so the segment is
    poisoned — every later append to it raises this error too — and the
    caller must treat the failed write (and the segment's tail) as not
    durable. The original ``OSError`` is chained as ``__cause__``.
    """


class CompactionError(ReproError):
    """A compaction job could not be planned or executed."""


class ConfigError(ReproError):
    """An :class:`~repro.core.config.LSMConfig` combination is invalid."""


class FilterError(ReproError):
    """A probabilistic filter was constructed or probed incorrectly."""


class BackgroundError(ReproError):
    """A background flush or compaction worker failed.

    Raised on the next foreground operation after the failure, wrapping the
    worker's original exception as ``__cause__`` (RocksDB's background-error
    contract). The tree stays readable for diagnosis but refuses further
    writes until it is closed.
    """


class ReplicationError(ReproError):
    """Shipping a committed WAL group to a shard's replica failed.

    Raised on the primary's write path: the write *is* durable locally
    (its WAL sync already succeeded), but the replica did not — or could
    not — acknowledge it. In sync mode that means the caller must not
    treat the write as replicated; the store responds by dropping the
    shard to primary-only service (``replica-lost``), so later writes
    succeed without replication until an operator intervenes. The
    applier's root cause is chained as ``__cause__``.
    """


class TxnConflictError(ReproError):
    """A cross-shard transactional batch was rolled back before commit.

    Raised by the two-phase-commit write path when the transaction could
    not reach its commit point — most commonly because the coordinator
    decision record could not be made durable after the per-shard
    prepares succeeded. The contract is all-or-nothing: when this error
    is raised, *no* shard has applied any of the batch (every prepared
    sub-batch was rolled back), so the whole batch can simply be
    retried. The serving layer maps it to the retryable structured reply
    ``ERR TXN <detail>``. The root cause is chained as ``__cause__``.
    """


class SnapshotExpiredError(ReproError):
    """A read at a snapshot the engine can no longer serve consistently.

    Snapshots pin the pre-snapshot versions that in-memory overwrites
    would otherwise drop, but that pinning is bounded: once the engine
    garbage-collects versions at or below a snapshot's sequence number —
    a compaction merging them away, or the pin buffer overflowing — any
    ``get``/``scan`` at that snapshot raises this error instead of
    silently returning a half-old, half-new view. Take a fresh snapshot
    and retry; the serving layer maps it to ``ERR SNAPEXPIRED <detail>``.
    ``seqno`` (when known) is the snapshot sequence number that expired.
    """

    def __init__(self, message: str, *, seqno: "int | None" = None) -> None:
        super().__init__(message)
        self.seqno = seqno


class ShardMovedError(ReproError):
    """An operation routed to a shard this node no longer (or never) owns.

    The cluster-mode sibling of :class:`ShardUnavailableError`: the data
    is alive and serving, just on *another node*. Carries everything a
    client needs to redirect — the owning node's identity and address and
    the cluster-map epoch the verdict is based on — and the serving layer
    maps it to the retryable ``ERR MOVED <shard> <host>:<port> <epoch>``
    reply (Redis-Cluster semantics: follow the redirect, refresh the map
    when the epoch is newer than yours).
    """

    def __init__(
        self, shard: int, node_id: str, host: str, port: int, epoch: int
    ) -> None:
        super().__init__(
            f"shard {shard} is owned by {node_id} at {host}:{port} "
            f"(epoch {epoch})"
        )
        self.shard = shard
        self.node_id = node_id
        self.host = host
        self.port = port
        self.epoch = epoch


class ShardFencedError(ReproError):
    """A write routed to a shard briefly fenced for migration handoff.

    Raised only inside the atomic ownership flip at the end of a live
    shard migration, while the source drains its in-flight commits. The
    condition clears within milliseconds, so the serving layer maps it to
    the retryable ``BUSY`` reply — clients absorb the fence with their
    ordinary backoff loop and never observe an error.
    """

    def __init__(self, shard: int) -> None:
        super().__init__(
            f"shard {shard} is fenced for migration handoff; retry"
        )
        self.shard = shard


class MigrationUnresolvedError(ReproError):
    """A live migration's ownership flip could not be resolved.

    Raised by the source-side migration driver when its ``MIG.SEAL``
    call failed *and* the destination cannot be reached to learn whether
    the seal took effect (the request may have been applied with only
    the reply lost). Aborting would lift the source's fence while the
    destination might own the shard at a higher epoch — a dual-ownership
    window whose acknowledged writes are lost once clients follow the
    newer epoch — so the shard is left **fenced** on the source instead:
    writes answer ``BUSY`` until an operator (or a retried ``MIGRATE``)
    re-drives the flip once the destination is reachable again. The last
    probe failure is chained as ``__cause__``.
    """

    def __init__(self, shard: int, dest_id: str, message: str) -> None:
        super().__init__(
            f"shard {shard}: seal outcome on {dest_id} unknown ({message}); "
            "shard stays fenced until the flip is resolved"
        )
        self.shard = shard
        self.dest_id = dest_id


class ShardUnavailableError(ReproError):
    """An operation routed to a quarantined shard of a sharded store.

    A shard is quarantined when its background workers die
    (:class:`BackgroundError`); the rest of the store keeps serving. The
    failure is retryable in the sense that *other* keys stay available —
    the serving layer maps it to ``ERR UNAVAILABLE <shard>`` so clients
    can distinguish a dead shard from a dead store.
    """

    def __init__(self, shard: int, message: str) -> None:
        super().__init__(f"shard {shard} unavailable: {message}")
        self.shard = shard
