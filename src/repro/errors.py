"""Exception hierarchy for the :mod:`repro` LSM engine.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Programming errors (bad arguments) raise the standard
:class:`ValueError`/:class:`TypeError` instead.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro LSM engine."""


class ClosedError(ReproError):
    """An operation was attempted on a closed tree, WAL, or store."""


class CorruptionError(ReproError):
    """Persistent state (WAL, manifest, or SSTable file) failed validation."""


class CompactionError(ReproError):
    """A compaction job could not be planned or executed."""


class ConfigError(ReproError):
    """An :class:`~repro.core.config.LSMConfig` combination is invalid."""


class FilterError(ReproError):
    """A probabilistic filter was constructed or probed incorrectly."""


class BackgroundError(ReproError):
    """A background flush or compaction worker failed.

    Raised on the next foreground operation after the failure, wrapping the
    worker's original exception as ``__cause__`` (RocksDB's background-error
    contract). The tree stays readable for diagnosis but refuses further
    writes until it is closed.
    """
