"""Analytic cost models and design-space navigation (§2.3)."""

from .allocation import (
    expected_false_positive_sum,
    geometric_level_counts,
    monkey_bits_per_key,
    monkey_fprs,
    uniform_fprs,
)
from .model import MODEL_LAYOUTS, CostModel, SystemEnv, Tuning, WorkloadMix
from .navigator import (
    DEFAULT_BUFFER_FRACTIONS,
    DEFAULT_SIZE_RATIOS,
    NavigationResult,
    Navigator,
    candidate_tunings,
)
from .robust import (
    RobustResult,
    RobustTuner,
    kl_divergence,
    worst_case_cost,
    worst_case_mix,
)
from .rum import (
    RumPoint,
    frontier_table,
    pareto_frontier,
    rum_cloud,
    rum_conjecture_holds,
    rum_point,
)

__all__ = [
    "expected_false_positive_sum",
    "geometric_level_counts",
    "monkey_bits_per_key",
    "monkey_fprs",
    "uniform_fprs",
    "MODEL_LAYOUTS",
    "CostModel",
    "SystemEnv",
    "Tuning",
    "WorkloadMix",
    "Navigator",
    "NavigationResult",
    "candidate_tunings",
    "DEFAULT_SIZE_RATIOS",
    "DEFAULT_BUFFER_FRACTIONS",
    "RobustTuner",
    "RobustResult",
    "kl_divergence",
    "worst_case_cost",
    "worst_case_mix",
    "RumPoint",
    "rum_point",
    "rum_cloud",
    "pareto_frontier",
    "rum_conjecture_holds",
    "frontier_table",
]
