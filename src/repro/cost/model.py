"""Closed-form LSM cost model (§2.3): the analytic performance space.

The model follows the standard Monkey/Dostoevsky-style worst-case analysis
the tutorial builds on. For a tree of ``L`` levels with size ratio ``T``,
``B`` entries per page, and per-level Bloom false positive rates ``p_i``:

=====================  ======================  ======================
cost (I/Os per op)     leveling                tiering
=====================  ======================  ======================
zero-result lookup     Σ p_i                   (T-1) · Σ p_i
non-empty lookup       1 + Σ p_i               1 + (T-1) · Σ p_i
write (amortized)      (T-1) · L / 2B          (T-1) · L / (T · B)
short scan (seek)      L                       (T-1) · L
long scan (s pages)    s · T/(T-1)             s · T
=====================  ======================  ======================

Lazy leveling (Dostoevsky) takes tiering's write cost on intermediate
levels and leveling's read cost on the last — which holds most of the data.
These formulas are *models*: experiment E10 compares them against measured
behaviour of the actual engine, which is the point of having both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List

from ..errors import ConfigError
from .allocation import monkey_fprs, uniform_fprs

#: Layouts the analytic model covers.
MODEL_LAYOUTS = ("leveling", "tiering", "lazy_leveling")


@dataclass(frozen=True)
class SystemEnv:
    """The data and hardware the model is evaluated against.

    Attributes:
        total_entries: Number of distinct entries the tree will hold.
        entry_size_bytes: Average entry payload size.
        page_size_bytes: Device page size (``B = page / entry``).
        memory_budget_bytes: Total main memory shared by the write buffer
            and the Bloom filters — the split is part of the tuning (§2.3.1).
    """

    total_entries: int = 1_000_000
    entry_size_bytes: int = 64
    page_size_bytes: int = 4096
    memory_budget_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if min(
            self.total_entries,
            self.entry_size_bytes,
            self.page_size_bytes,
            self.memory_budget_bytes,
        ) <= 0:
            raise ConfigError("all SystemEnv parameters must be positive")

    @property
    def entries_per_page(self) -> float:
        """``B``: entries per disk page."""
        return max(1.0, self.page_size_bytes / self.entry_size_bytes)

    @property
    def data_bytes(self) -> int:
        """Total payload bytes."""
        return self.total_entries * self.entry_size_bytes


@dataclass(frozen=True)
class Tuning:
    """One point of the analytic design space.

    Attributes:
        size_ratio: Growth factor ``T`` between levels.
        layout: ``leveling`` | ``tiering`` | ``lazy_leveling``.
        buffer_fraction: Share of the memory budget given to the write
            buffer; the rest funds the Bloom filters (§2.3.1).
        monkey: Whether filter memory uses the Monkey-optimal allocation.
    """

    size_ratio: int = 4
    layout: str = "leveling"
    buffer_fraction: float = 0.25
    monkey: bool = True

    def __post_init__(self) -> None:
        if self.size_ratio < 2:
            raise ConfigError("size_ratio must be at least 2")
        if self.layout not in MODEL_LAYOUTS:
            raise ConfigError(
                f"layout must be one of {MODEL_LAYOUTS}, got {self.layout!r}"
            )
        if not 0.0 < self.buffer_fraction < 1.0:
            raise ConfigError("buffer_fraction must be in (0, 1)")

    def with_overrides(self, **overrides: object) -> "Tuning":
        """Copy with fields replaced (re-validated)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class WorkloadMix:
    """Operation mix the cost is weighted by (Endure's ρ vector, §2.3.2).

    Fractions must sum to 1: ``empty_lookups`` (zero-result point reads),
    ``lookups`` (non-empty point reads), ``short_scans``, and ``writes``.
    """

    empty_lookups: float = 0.25
    lookups: float = 0.25
    short_scans: float = 0.25
    writes: float = 0.25

    def __post_init__(self) -> None:
        total = (
            self.empty_lookups + self.lookups + self.short_scans + self.writes
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"workload fractions must sum to 1, got {total}")
        if min(
            self.empty_lookups, self.lookups, self.short_scans, self.writes
        ) < 0:
            raise ConfigError("workload fractions must be non-negative")

    def as_vector(self) -> List[float]:
        """(z0, z1, q, w) in a fixed order used by the robust tuner."""
        return [self.empty_lookups, self.lookups, self.short_scans, self.writes]

    @staticmethod
    def from_vector(vector: List[float]) -> "WorkloadMix":
        """Inverse of :meth:`as_vector`."""
        z0, z1, q, w = vector
        return WorkloadMix(z0, z1, q, w)


class CostModel:
    """Evaluates expected I/O cost per operation for any tuning."""

    def __init__(self, env: SystemEnv) -> None:
        self.env = env

    # -- tree shape ---------------------------------------------------------

    def buffer_bytes(self, tuning: Tuning) -> float:
        """Write-buffer bytes implied by the tuning's memory split."""
        return self.env.memory_budget_bytes * tuning.buffer_fraction

    def filter_bits(self, tuning: Tuning) -> float:
        """Filter bits implied by the tuning's memory split."""
        return 8.0 * self.env.memory_budget_bytes * (1.0 - tuning.buffer_fraction)

    def num_levels(self, tuning: Tuning) -> int:
        """``L = ceil(log_T(data / buffer))``, at least 1."""
        ratio = self.env.data_bytes / max(1.0, self.buffer_bytes(tuning))
        if ratio <= 1:
            return 1
        return max(1, math.ceil(math.log(ratio, tuning.size_ratio)))

    def level_entry_counts(self, tuning: Tuning) -> List[int]:
        """Entries per level of the full tree, shallowest first."""
        levels = self.num_levels(tuning)
        weights = [tuning.size_ratio**index for index in range(levels)]
        scale = self.env.total_entries / sum(weights)
        return [max(1, round(weight * scale)) for weight in weights]

    def level_fprs(self, tuning: Tuning) -> List[float]:
        """Per-level Bloom false positive rates under the tuning."""
        counts = self.level_entry_counts(tuning)
        bits = self.filter_bits(tuning)
        if tuning.monkey:
            return monkey_fprs(counts, bits)
        return uniform_fprs(counts, bits)

    def runs_per_level(self, tuning: Tuning, level: int, last: int) -> int:
        """Sorted runs a full level holds under the tuning's layout."""
        if tuning.layout == "leveling":
            return 1
        if tuning.layout == "tiering":
            return tuning.size_ratio - 1
        return 1 if level >= last else tuning.size_ratio - 1

    # -- per-operation costs (expected I/Os) --------------------------------

    def empty_lookup_cost(self, tuning: Tuning) -> float:
        """Zero-result point lookup: expected false-positive I/Os."""
        fprs = self.level_fprs(tuning)
        last = len(fprs) - 1
        return sum(
            fpr * self.runs_per_level(tuning, level, last)
            for level, fpr in enumerate(fprs)
        )

    def lookup_cost(self, tuning: Tuning) -> float:
        """Non-empty point lookup: one hit page plus false positives above.

        The worst case places the target at the last level, so every
        shallower run can contribute a false positive.
        """
        fprs = self.level_fprs(tuning)
        last = len(fprs) - 1
        above = sum(
            fpr * self.runs_per_level(tuning, level, last)
            for level, fpr in enumerate(fprs[:-1])
        )
        return 1.0 + above

    def short_scan_cost(self, tuning: Tuning) -> float:
        """Short range scan: one seek I/O per sorted run (filters don't
        help a scan, §2.1.3)."""
        levels = self.num_levels(tuning)
        last = levels - 1
        return float(
            sum(
                self.runs_per_level(tuning, level, last)
                for level in range(levels)
            )
        )

    def long_scan_cost(self, tuning: Tuning, selectivity: float = 0.001) -> float:
        """Long range scan returning ``selectivity`` of the data."""
        pages = (
            selectivity * self.env.total_entries / self.env.entries_per_page
        )
        ratio = tuning.size_ratio
        if tuning.layout == "leveling":
            return pages * ratio / (ratio - 1)
        if tuning.layout == "tiering":
            return pages * ratio
        return pages * (1 + 1.0 / (ratio - 1))  # lazy: leveled last level

    def write_cost(self, tuning: Tuning) -> float:
        """Amortized I/Os per written entry (the merging debt, §2.2)."""
        levels = self.num_levels(tuning)
        ratio = tuning.size_ratio
        per_page = self.env.entries_per_page
        if tuning.layout == "leveling":
            merges = levels * (ratio - 1) / 2.0
        elif tuning.layout == "tiering":
            merges = levels * (ratio - 1) / ratio
        else:  # lazy leveling: tiered intermediates + one leveled last
            merges = (levels - 1) * (ratio - 1) / ratio + (ratio - 1) / 2.0
        return (1.0 + merges) / per_page

    def cost_vector(self, tuning: Tuning) -> List[float]:
        """(empty lookup, lookup, short scan, write) costs, the c vector."""
        return [
            self.empty_lookup_cost(tuning),
            self.lookup_cost(tuning),
            self.short_scan_cost(tuning),
            self.write_cost(tuning),
        ]

    def workload_cost(self, tuning: Tuning, mix: WorkloadMix) -> float:
        """Expected I/Os per operation of the mix — the objective the
        navigator minimizes and Endure robustifies."""
        weights = mix.as_vector()
        costs = self.cost_vector(tuning)
        return sum(weight * cost for weight, cost in zip(weights, costs))

    def describe(self, tuning: Tuning) -> Dict[str, float]:
        """All derived quantities for reporting."""
        return {
            "levels": float(self.num_levels(tuning)),
            "buffer_bytes": self.buffer_bytes(tuning),
            "filter_bits": self.filter_bits(tuning),
            "empty_lookup": self.empty_lookup_cost(tuning),
            "lookup": self.lookup_cost(tuning),
            "short_scan": self.short_scan_cost(tuning),
            "write": self.write_cost(tuning),
        }
