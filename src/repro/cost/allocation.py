"""Monkey-style optimal Bloom-filter memory allocation (§2.1.3).

Monkey's observation: with the same total filter memory, assigning *equal
bits per key* to every level is suboptimal. A false positive at any level
costs the same (one wasted run probe), but shallow levels hold exponentially
fewer keys, so a bit spent there buys a larger false-positive-rate
reduction. Minimizing the *sum* of per-run false positive rates

    minimize   sum_i p_i
    subject to sum_i n_i * (-ln p_i) / (ln 2)^2  =  M_total,   0 < p_i <= 1

has the closed-form solution ``p_i ∝ n_i`` (by Lagrange multipliers),
clamped at 1: under a tight budget the deepest, largest levels receive *no*
filter at all while shallow levels keep very low false positive rates.

:func:`monkey_fprs` solves the clamped system by bisection on the
proportionality constant; :func:`monkey_bits_per_key` converts the result
back into per-level bits-per-key budgets the engine can build filters with.
"""

from __future__ import annotations

import math
from typing import List, Sequence

_LN2_SQ = math.log(2) ** 2


def uniform_fprs(entry_counts: Sequence[int], total_bits: float) -> List[float]:
    """False positive rates when every level gets equal bits per key."""
    total_entries = sum(entry_counts)
    if total_entries == 0 or total_bits <= 0:
        return [1.0] * len(entry_counts)
    bits_per_key = total_bits / total_entries
    fpr = math.exp(-bits_per_key * _LN2_SQ)
    return [min(1.0, fpr)] * len(entry_counts)


def _bits_needed(entry_counts: Sequence[int], fprs: Sequence[float]) -> float:
    return sum(
        count * (-math.log(fpr)) / _LN2_SQ
        for count, fpr in zip(entry_counts, fprs)
        if fpr < 1.0 and count > 0
    )


def monkey_fprs(
    entry_counts: Sequence[int], total_bits: float, tolerance: float = 1e-9
) -> List[float]:
    """Monkey-optimal per-run false positive rates for a memory budget.

    Args:
        entry_counts: Keys per run/level, shallowest first. Zero-entry
            levels receive a vacuous ``p = 1``.
        total_bits: Total filter memory to distribute.
        tolerance: Bisection convergence tolerance on the constant ``c``.

    Returns:
        Per-level false positive rates, same order as ``entry_counts``.
    """
    counts = [max(0, int(count)) for count in entry_counts]
    if total_bits <= 0 or not any(counts):
        return [1.0] * len(counts)

    def fprs_for(constant: float) -> List[float]:
        return [
            min(1.0, constant * count) if count else 1.0 for count in counts
        ]

    # Memory use is strictly decreasing in c wherever some p_i < 1.
    lo, hi = 0.0, 1.0 / min(count for count in counts if count)
    if _bits_needed(counts, fprs_for(hi)) >= total_bits:
        return fprs_for(hi)  # even the cheapest allocation exceeds budget
    for _ in range(200):
        mid = (lo + hi) / 2
        if _bits_needed(counts, fprs_for(mid)) > total_bits:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance * hi:
            break
    return fprs_for(hi)


def monkey_bits_per_key(
    entry_counts: Sequence[int], avg_bits_per_key: float
) -> List[float]:
    """Per-level bits/key under Monkey, from an average bits/key budget.

    ``avg_bits_per_key * sum(entry_counts)`` total bits are redistributed
    optimally; levels whose optimal FPR is 1 get zero bits (no filter).
    """
    total_bits = avg_bits_per_key * sum(max(0, c) for c in entry_counts)
    fprs = monkey_fprs(entry_counts, total_bits)
    return [
        (-math.log(fpr) / _LN2_SQ) if fpr < 1.0 else 0.0 for fpr in fprs
    ]


def expected_false_positive_sum(fprs: Sequence[float]) -> float:
    """Expected wasted run probes per zero-result lookup: ``sum_i p_i``."""
    return sum(fprs)


def geometric_level_counts(
    total_entries: int, size_ratio: int, num_levels: int
) -> List[int]:
    """Entry counts of a full geometric tree, shallowest level first.

    Level ``i`` (0-based) holds ``size_ratio`` times fewer entries than
    level ``i + 1``; the deepest level dominates. Useful for analytic
    allocation before a tree exists.
    """
    if num_levels < 1:
        raise ValueError("num_levels must be at least 1")
    if size_ratio < 2:
        raise ValueError("size_ratio must be at least 2")
    weights = [size_ratio**index for index in range(num_levels)]
    scale = total_entries / sum(weights)
    return [max(0, round(weight * scale)) for weight in weights]
