"""Endure-style robust tuning: min-max over a workload neighborhood (§2.3.2).

Tuning for exactly the expected workload is brittle: "the advent of new
volatile applications and the increasing adoption of shared infrastructure
add a degree of uncertainty between the expected and the observed
workloads." Endure formulates tuning as a min-max problem:

    minimize over tunings   max over w with KL(w ‖ ρ) ≤ η   cost(tuning, w)

where ρ is the expected (nominal) workload mix and η bounds how far the
observed mix may drift. Because the cost is linear in w, the inner maximum
has the classic distributionally-robust dual

    max_w Σ w_i c_i  =  min_{λ>0}  λ·η + λ·ln Σ_i ρ_i · e^{c_i / λ},

a one-dimensional convex minimization solved here with scipy. The outer
minimization reuses the navigator's candidate grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from scipy.optimize import minimize_scalar

from .model import CostModel, SystemEnv, Tuning, WorkloadMix
from .navigator import Navigator, candidate_tunings


def kl_divergence(w: Sequence[float], rho: Sequence[float]) -> float:
    """KL(w ‖ rho) over the operation-mix simplex (natural log)."""
    if len(w) != len(rho):
        raise ValueError("distributions must have equal length")
    total = 0.0
    for wi, ri in zip(w, rho):
        if wi < 0 or ri < 0:
            raise ValueError("probabilities must be non-negative")
        if wi == 0:
            continue
        if ri == 0:
            return float("inf")
        total += wi * math.log(wi / ri)
    return total


def worst_case_cost(
    costs: Sequence[float], rho: Sequence[float], eta: float
) -> float:
    """max over ``KL(w ‖ rho) <= eta`` of ``Σ w_i costs_i`` (via the dual).

    ``eta = 0`` returns the nominal cost; large ``eta`` approaches
    ``max(costs)`` (the adversary puts all mass on the dearest operation).
    """
    if eta < 0:
        raise ValueError("eta must be non-negative")
    nominal = sum(w * c for w, c in zip(rho, costs))
    if eta == 0:
        return nominal
    # Operations with zero nominal probability stay at zero inside any KL
    # ball (their divergence would be infinite), so the adversary can only
    # shift mass among the supported coordinates.
    supported = [(r, c) for r, c in zip(rho, costs) if r > 0]
    if not supported:
        return nominal
    peak = max(c for _r, c in supported)
    if peak <= 0:
        return nominal

    def dual(log_lam: float) -> float:
        lam = math.exp(log_lam)
        # λ·η + λ·ln Σ ρ_i e^{c_i/λ}, computed with the max factored out
        # for numerical stability.
        log_sum = math.log(
            sum(r * math.exp((c - peak) / lam) for r, c in supported)
        )
        return lam * eta + peak + lam * log_sum

    result = minimize_scalar(
        dual, bounds=(math.log(1e-6 * peak + 1e-12), math.log(1e6 * peak + 1e-6)),
        method="bounded",
        options={"xatol": 1e-10},
    )
    # The dual upper-bounds the primal everywhere; take the tightest point
    # and never report below the nominal (w = ρ is always feasible).
    return max(nominal, min(float(result.fun), peak))


def worst_case_mix(
    costs: Sequence[float], rho: Sequence[float], eta: float
) -> List[float]:
    """The adversarial mix achieving (approximately) the worst case.

    From the dual's optimality condition the worst-case distribution is the
    exponential tilt ``w_i ∝ ρ_i · e^{c_i/λ*}``; the tilt λ* is found by
    bisection on the KL constraint.
    """
    if eta <= 0:
        return list(rho)
    supported_costs = [c for r, c in zip(rho, costs) if r > 0]
    if not supported_costs:
        return list(rho)
    peak = max(supported_costs)

    def tilt(lam: float) -> List[float]:
        weights = [
            r * math.exp((c - peak) / lam) if r > 0 else 0.0
            for r, c in zip(rho, costs)
        ]
        total = sum(weights)
        return [weight / total for weight in weights]

    lo, hi = 1e-6 * max(peak, 1e-9), 1e6 * max(peak, 1e-9)
    for _ in range(100):
        mid = math.sqrt(lo * hi)
        if kl_divergence(tilt(mid), rho) > eta:
            lo = mid
        else:
            hi = mid
    return tilt(hi)


@dataclass(frozen=True)
class RobustResult:
    """Output of the robust tuner, with the nominal tuning for contrast."""

    robust_tuning: Tuning
    robust_worst_cost: float
    robust_nominal_cost: float
    nominal_tuning: Tuning
    nominal_worst_cost: float
    nominal_nominal_cost: float

    @property
    def protection(self) -> float:
        """How much worst-case cost the robust choice avoids (fraction)."""
        if self.nominal_worst_cost == 0:
            return 0.0
        return 1.0 - self.robust_worst_cost / self.nominal_worst_cost

    @property
    def premium(self) -> float:
        """Extra nominal cost paid for robustness (fraction)."""
        if self.nominal_nominal_cost == 0:
            return 0.0
        return (
            self.robust_nominal_cost / self.nominal_nominal_cost - 1.0
        )


class RobustTuner:
    """Min-max tuner over the navigator's candidate grid.

    Args:
        env: System environment for the cost model.
        candidates: Tuning grid; defaults to the navigator's.
    """

    def __init__(
        self,
        env: SystemEnv,
        candidates: Optional[Sequence[Tuning]] = None,
    ) -> None:
        self.env = env
        self.model = CostModel(env)
        self.candidates = (
            list(candidates)
            if candidates is not None
            else list(candidate_tunings())
        )

    def tune(self, nominal: WorkloadMix, eta: float) -> RobustResult:
        """Pick the tuning minimizing worst-case cost within the η-ball."""
        rho = nominal.as_vector()
        nominal_result = Navigator(self.env, self.candidates).tune(nominal)
        best_tuning = None
        best_worst = float("inf")
        for tuning in self.candidates:
            costs = self.model.cost_vector(tuning)
            worst = worst_case_cost(costs, rho, eta)
            if worst < best_worst:
                best_worst = worst
                best_tuning = tuning
        assert best_tuning is not None
        nominal_costs = self.model.cost_vector(nominal_result.tuning)
        return RobustResult(
            robust_tuning=best_tuning,
            robust_worst_cost=best_worst,
            robust_nominal_cost=self.model.workload_cost(best_tuning, nominal),
            nominal_tuning=nominal_result.tuning,
            nominal_worst_cost=worst_case_cost(nominal_costs, rho, eta),
            nominal_nominal_cost=nominal_result.cost,
        )

    def cost_under(self, tuning: Tuning, mix: WorkloadMix) -> float:
        """Convenience: evaluate any tuning at any mix."""
        return self.model.workload_cost(tuning, mix)
