"""The RUM space: Read / Update / Memory overheads of a design (§2.3).

"The RUM conjecture highlights the inherent three-way tradeoff constructed
by the Read cost, the Update cost, and the Memory footprint. Any given
design presents a navigable tradeoff in terms of the RUM costs." This
module computes the RUM triple of any tuning from the cost model, extracts
the Pareto frontier of a candidate set, and checks the conjecture's
signature empirically: improving one axis costs another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .model import CostModel, SystemEnv, Tuning
from .navigator import candidate_tunings


@dataclass(frozen=True)
class RumPoint:
    """One design's position in the RUM space.

    Attributes:
        tuning: The design.
        read: Expected I/Os per (non-empty) point lookup.
        update: Amortized I/Os per written entry.
        memory: Main-memory bits per entry (buffer + filters).
    """

    tuning: Tuning
    read: float
    update: float
    memory: float

    def dominates(self, other: "RumPoint") -> bool:
        """Pareto dominance: no worse on every axis, better on one."""
        no_worse = (
            self.read <= other.read
            and self.update <= other.update
            and self.memory <= other.memory
        )
        better = (
            self.read < other.read
            or self.update < other.update
            or self.memory < other.memory
        )
        return no_worse and better


def rum_point(model: CostModel, tuning: Tuning) -> RumPoint:
    """Evaluate one tuning's RUM triple."""
    memory_bits = 8.0 * model.env.memory_budget_bytes
    return RumPoint(
        tuning=tuning,
        read=model.lookup_cost(tuning),
        update=model.write_cost(tuning),
        memory=memory_bits / model.env.total_entries,
    )


def rum_cloud(
    env: SystemEnv, candidates: Optional[Sequence[Tuning]] = None
) -> List[RumPoint]:
    """RUM triples of a candidate set (the navigator grid by default)."""
    model = CostModel(env)
    tunings = list(candidates) if candidates is not None else list(
        candidate_tunings()
    )
    return [rum_point(model, tuning) for tuning in tunings]


def pareto_frontier(points: Sequence[RumPoint]) -> List[RumPoint]:
    """The non-dominated subset of a RUM cloud."""
    frontier: List[RumPoint] = []
    for point in points:
        if not any(other.dominates(point) for other in points):
            frontier.append(point)
    return frontier


def rum_conjecture_holds(
    frontier: Sequence[RumPoint], tolerance: float = 1e-9
) -> bool:
    """Empirical RUM check over a frontier: along the read axis, update
    cost must not also improve (an ordering where both strictly improve
    together would contradict the conjecture's tradeoff).

    Memory is constant across a fixed-budget grid, so the check reduces to
    the read-update tradeoff curve being monotone (anti-correlated) after
    sorting by read cost.
    """
    ordered = sorted(frontier, key=lambda point: (point.read, point.update))
    for earlier, later in zip(ordered, ordered[1:]):
        if later.read > earlier.read + tolerance:
            # Strictly worse reads must buy at-least-as-good updates.
            if later.update > earlier.update + tolerance:
                return False
    return True


def frontier_table(
    frontier: Sequence[RumPoint],
) -> List[Tuple[str, int, float, float, float]]:
    """Rows (layout, T, read, update, memory) for reporting."""
    return [
        (
            point.tuning.layout,
            point.tuning.size_ratio,
            point.read,
            point.update,
            point.memory,
        )
        for point in sorted(frontier, key=lambda p: p.read)
    ]
