"""Design-space navigation: pick the tuning the workload deserves (§2.3.1).

"Navigating the LSM design space is critical; however, the vastness of this
design space makes this process complex." The navigator makes it mechanical:
it enumerates a grid over the analytic design space — size ratio × layout ×
buffer/filter memory split × filter allocation — evaluates every point with
the :class:`~repro.cost.model.CostModel`, and returns the cheapest tuning
for a given workload mix. The same grid doubles as the candidate set for
the robust tuner (§2.3.2) and as the sweep driver for experiments E10/E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .model import MODEL_LAYOUTS, CostModel, SystemEnv, Tuning, WorkloadMix

#: Default grid resolution.
DEFAULT_SIZE_RATIOS = tuple(range(2, 13))
DEFAULT_BUFFER_FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class NavigationResult:
    """The navigator's answer: the winning tuning and its predicted cost."""

    tuning: Tuning
    cost: float
    runner_up: Optional[Tuning] = None
    runner_up_cost: float = float("inf")

    @property
    def margin(self) -> float:
        """Relative cost gap to the runner-up (0 when there is none)."""
        if self.runner_up is None or self.runner_up_cost == float("inf"):
            return 0.0
        return (self.runner_up_cost - self.cost) / max(self.cost, 1e-12)


def candidate_tunings(
    size_ratios: Sequence[int] = DEFAULT_SIZE_RATIOS,
    layouts: Sequence[str] = MODEL_LAYOUTS,
    buffer_fractions: Sequence[float] = DEFAULT_BUFFER_FRACTIONS,
    monkey: bool = True,
) -> Iterator[Tuning]:
    """The tuning grid: every combination of the given knob values."""
    for layout in layouts:
        for ratio in size_ratios:
            for fraction in buffer_fractions:
                yield Tuning(
                    size_ratio=ratio,
                    layout=layout,
                    buffer_fraction=fraction,
                    monkey=monkey,
                )


class Navigator:
    """Grid-search tuner over the analytic design space.

    Example:
        >>> nav = Navigator(SystemEnv())
        >>> write_heavy = WorkloadMix(0.05, 0.05, 0.1, 0.8)
        >>> nav.tune(write_heavy).tuning.layout
        'tiering'
    """

    def __init__(
        self,
        env: SystemEnv,
        candidates: Optional[Sequence[Tuning]] = None,
    ) -> None:
        self.env = env
        self.model = CostModel(env)
        self.candidates: List[Tuning] = (
            list(candidates)
            if candidates is not None
            else list(candidate_tunings())
        )
        if not self.candidates:
            raise ValueError("navigator needs at least one candidate tuning")

    def tune(self, mix: WorkloadMix) -> NavigationResult:
        """The cheapest candidate tuning for ``mix``."""
        scored = sorted(
            ((self.model.workload_cost(tuning, mix), tuning)
             for tuning in self.candidates),
            key=lambda pair: pair[0],
        )
        best_cost, best = scored[0]
        # The runner-up is the best tuning with a *different* layout, which
        # is the comparison a designer actually cares about.
        runner = next(
            ((cost, tuning) for cost, tuning in scored[1:]
             if tuning.layout != best.layout),
            None,
        )
        if runner is None:
            return NavigationResult(best, best_cost)
        return NavigationResult(best, best_cost, runner[1], runner[0])

    def tradeoff_curve(
        self,
        layout: str,
        size_ratios: Sequence[int] = DEFAULT_SIZE_RATIOS,
        buffer_fraction: float = 0.25,
        monkey: bool = True,
    ) -> List[Tuple[int, float, float]]:
        """(T, lookup cost, write cost) along the size-ratio axis — the
        read-write tradeoff curve of §2.3.1 for one layout."""
        curve = []
        for ratio in size_ratios:
            tuning = Tuning(ratio, layout, buffer_fraction, monkey)
            curve.append(
                (
                    ratio,
                    self.model.lookup_cost(tuning),
                    self.model.write_cost(tuning),
                )
            )
        return curve

    def memory_split_curve(
        self,
        mix: WorkloadMix,
        layout: str = "leveling",
        size_ratio: int = 4,
        fractions: Sequence[float] = DEFAULT_BUFFER_FRACTIONS,
    ) -> List[Tuple[float, float]]:
        """(buffer fraction, workload cost) — the co-tuning curve of E11."""
        return [
            (
                fraction,
                self.model.workload_cost(
                    Tuning(size_ratio, layout, fraction), mix
                ),
            )
            for fraction in fractions
        ]
