"""Command-line interface: drive workloads and tuning from a shell.

Usage::

    python -m repro.cli workload --preset a --ops 20000 --layout leveling
    python -m repro.cli tune --reads 0.5 --empty-reads 0.2 --scans 0.1 \
        --writes 0.2
    python -m repro.cli robust --writes 0.9 --reads 0.05 --empty-reads 0.05 \
        --eta 1.0
    python -m repro.cli layouts --ops 20000
    python -m repro.cli serve --port 7379 --background --shards 4
    python -m repro.cli bench-serve --clients 8 --pipeline 8
    python -m repro.cli fault-sweep --quick --seed 7
    python -m repro.cli cluster init --data-dir /tmp/c --shards 8 \
        --node a=127.0.0.1:7401 --node b=127.0.0.1:7402
    python -m repro.cli cluster serve --data-dir /tmp/c --node-id a
    python -m repro.cli cluster migrate --port 7401 --shard 3 --to b
    python -m repro.cli cluster status --port 7401

Every subcommand prints the same ASCII tables the benchmark suite uses, so
shell exploration and the archived experiment results read identically.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from typing import List, Optional

from .bench.harness import Harness
from .bench.report import format_table
from .core.config import LAYOUT_KINDS, PICKER_KINDS, LSMConfig
from .core.tree import LSMTree
from .cost.model import SystemEnv, WorkloadMix
from .cost.navigator import Navigator
from .cost.robust import RobustTuner
from .workload.generator import PRESETS


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--layout", choices=LAYOUT_KINDS, default="leveling")
    parser.add_argument("--size-ratio", type=int, default=4)
    parser.add_argument("--buffer-bytes", type=int, default=64 * 1024)
    parser.add_argument("--bits-per-key", type=float, default=10.0)
    parser.add_argument(
        "--allocation", choices=("none", "uniform", "monkey"), default="uniform"
    )
    parser.add_argument("--picker", choices=PICKER_KINDS, default="least_overlap")
    parser.add_argument("--cache-bytes", type=int, default=0)


def _config_from(args: argparse.Namespace) -> LSMConfig:
    return LSMConfig(
        layout=args.layout,
        size_ratio=args.size_ratio,
        buffer_size_bytes=args.buffer_bytes,
        filter_bits_per_key=args.bits_per_key,
        filter_allocation=(
            args.allocation if args.allocation != "none" else "uniform"
        ),
        picker=args.picker,
        block_cache_bytes=args.cache_bytes,
        granularity="file" if args.layout in ("leveling", "hybrid") else "level",
    )


def _mix_from(args: argparse.Namespace) -> WorkloadMix:
    return WorkloadMix(
        empty_lookups=args.empty_reads,
        lookups=args.reads,
        short_scans=args.scans,
        writes=args.writes,
    )


def command_workload(args: argparse.Namespace) -> int:
    """Replay a YCSB-style preset and print the measured metric set."""
    factory = PRESETS[args.preset]
    spec = factory(num_ops=args.ops, key_count=args.keys)
    tree = LSMTree(_config_from(args))
    metrics = Harness(tree).run_spec(spec)
    engine_snapshot = tree.stats.to_dict()
    print(
        format_table(
            ["metric", "value"],
            [
                ("operations", metrics.operations),
                ("simulated time (ms)", metrics.simulated_us / 1000.0),
                ("throughput (kops/sim-s)", metrics.throughput_kops),
                ("write amplification", metrics.write_amplification),
                ("space amplification", tree.space_amplification()),
                ("pages read/op", metrics.pages_read_per_op()),
                ("write p99 (us)", metrics.write_latencies_us.get("p99", 0.0)),
                ("read p99 (us)", metrics.read_latencies_us.get("p99", 0.0)),
                ("compactions", engine_snapshot["compactions"]),
                ("stall events", engine_snapshot["stall_events"]),
            ],
            title=f"workload '{args.preset}' on {args.layout}/T={args.size_ratio}",
        )
    )
    return 0


def command_tune(args: argparse.Namespace) -> int:
    """Recommend a tuning for a workload mix via the cost model."""
    env = SystemEnv(
        total_entries=args.entries,
        entry_size_bytes=args.entry_bytes,
        memory_budget_bytes=args.memory_bytes,
    )
    result = Navigator(env).tune(_mix_from(args))
    tuning = result.tuning
    print(
        format_table(
            ["knob", "recommendation"],
            [
                ("layout", tuning.layout),
                ("size ratio T", tuning.size_ratio),
                ("buffer share of memory", f"{tuning.buffer_fraction:.0%}"),
                ("filter allocation", "monkey" if tuning.monkey else "uniform"),
                ("predicted I/O per op", f"{result.cost:.4f}"),
                (
                    "margin over next layout",
                    f"{result.margin:.0%}" if result.runner_up else "n/a",
                ),
            ],
            title="recommended tuning",
        )
    )
    return 0


def command_robust(args: argparse.Namespace) -> int:
    """Min-max tuning under workload uncertainty (Endure-style)."""
    env = SystemEnv(
        total_entries=args.entries,
        entry_size_bytes=args.entry_bytes,
        memory_budget_bytes=args.memory_bytes,
    )
    result = RobustTuner(env).tune(_mix_from(args), args.eta)
    print(
        format_table(
            ["quantity", "nominal-optimal", "robust"],
            [
                (
                    "tuning",
                    f"{result.nominal_tuning.layout}"
                    f"/T={result.nominal_tuning.size_ratio}",
                    f"{result.robust_tuning.layout}"
                    f"/T={result.robust_tuning.size_ratio}",
                ),
                (
                    "cost at expected workload",
                    f"{result.nominal_nominal_cost:.4f}",
                    f"{result.robust_nominal_cost:.4f}",
                ),
                (
                    "worst-case cost in eta-ball",
                    f"{result.nominal_worst_cost:.4f}",
                    f"{result.robust_worst_cost:.4f}",
                ),
                ("protection", "-", f"{result.protection:.0%}"),
                ("nominal premium", "-", f"{result.premium:.0%}"),
            ],
            title=f"robust tuning, eta={args.eta}",
        )
    )
    return 0


def command_layouts(args: argparse.Namespace) -> int:
    """Quick layout comparison on a mixed workload (a mini experiment E2)."""
    import random

    rows = []
    keys = [f"key{i:08d}" for i in range(args.keys)]
    random.Random(1).shuffle(keys)
    for layout in LAYOUT_KINDS:
        config = LSMConfig(
            layout=layout,
            buffer_size_bytes=4096,
            target_file_bytes=4096,
            block_bytes=1024,
            granularity="file" if layout in ("leveling", "hybrid") else "level",
        )
        tree = LSMTree(config)
        for key in keys[: args.keys]:
            tree.put(key, "v" * 24)
        rows.append(
            (
                layout,
                tree.write_amplification(),
                tree.space_amplification(),
                tree.total_run_count(),
                tree.stats.to_dict()["compactions"],
            )
        )
    print(
        format_table(
            ["layout", "write amp", "space amp", "runs", "compactions"],
            rows,
            title=f"layout comparison, {args.keys} random inserts",
        )
    )
    return 0


def command_serve(args: argparse.Namespace) -> int:
    """Run the asyncio KV server until SIGINT/SIGTERM (clean shutdown)."""
    from .api import KVStore
    from .core.config import LSMConfig
    from .server import KVServer, maybe_install_uvloop
    from .shard import ShardedStore

    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if maybe_install_uvloop(True if args.uvloop else None):
        print("repro-server: uvloop event loop enabled", flush=True)
    elif args.uvloop:
        raise SystemExit("--uvloop requested but uvloop is not installed")
    config = LSMConfig(
        background_mode=args.background,
        num_buffers=args.num_buffers,
        buffer_size_bytes=args.buffer_bytes,
        flush_threads=args.flush_threads,
        compaction_threads=args.compaction_threads,
        wal_fsync=args.wal_fsync,
    )
    store: KVStore
    if args.replication != "off":
        if args.wal_dir is None:
            raise SystemExit("--replication needs --wal-dir")
        from .replication import ReplicatedStore

        store = ReplicatedStore(
            args.shards,
            config,
            mode=args.replication,
            wal_dir=args.wal_dir,
        )
    elif args.shards > 1:
        store = ShardedStore(args.shards, config, wal_dir=args.wal_dir)
    else:
        store = LSMTree(config, wal_dir=args.wal_dir)
    server = KVServer(
        store,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        executor_threads=args.executor_threads,
        group_commit=not args.no_group_commit,
        owns_tree=True,
    )

    async def run() -> None:
        await server.start()
        print(
            f"repro-server listening on {server.host}:{server.port} "
            f"(group_commit={server.group_commit}, "
            f"shards={args.shards}, background={args.background}, "
            f"replication={args.replication})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            print("repro-server shutting down", flush=True)
            await server.stop()

    asyncio.run(run())
    return 0


def command_bench_serve(args: argparse.Namespace) -> int:
    """Closed-loop server benchmark: group commit on vs. off."""
    import tempfile

    from .server import maybe_install_uvloop
    from .server.loadgen import measure_server

    if maybe_install_uvloop(True if args.uvloop else None):
        print("bench-serve: uvloop event loop enabled", flush=True)
    elif args.uvloop:
        raise SystemExit("--uvloop requested but uvloop is not installed")
    rows = []
    for group_commit in (False, True):
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as wal_dir:
            rows.append(
                measure_server(
                    clients=args.clients,
                    pipeline_depth=args.pipeline,
                    ops_per_client=args.ops,
                    group_commit=group_commit,
                    wal_dir=wal_dir,
                    value_bytes=args.value_bytes,
                    shards=args.shards,
                )
            )
    print(
        format_table(
            ["commit mode", "throughput (ops/s)", "drain (s)",
             "sustained (ops/s)", "p50 (us)", "p99 (us)", "ops/commit"],
            [
                (
                    "group" if row["group_commit"] else "per-request",
                    row["throughput_ops_s"],
                    row["drain_s"],
                    row["sustained_ops_s"],
                    row["p50_us"],
                    row["p99_us"],
                    row["ops_per_commit"],
                )
                for row in rows
            ],
            title=(
                f"bench-serve: {args.clients} clients x pipeline "
                f"{args.pipeline}, {args.ops} writes each "
                f"({args.shards} shard(s), durable WAL)"
            ),
        )
    )
    return 0


def command_txn_demo(args: argparse.Namespace) -> int:
    """Protocol-v2 walkthrough: HELLO, snapshot reads, atomic MULTI.

    Boots a sharded store behind a real server, negotiates protocol v2,
    takes a snapshot, overwrites every key with one cross-shard MULTI
    (two-phase commit under the hood), and shows the same keys read at
    the snapshot versus at latest.
    """
    import asyncio
    import tempfile

    from .server import KVServer
    from .server.client import KVClient
    from .shard import ShardedStore, hash_shard_index

    async def demo() -> None:
        with tempfile.TemporaryDirectory(prefix="repro-txn-") as wal_dir:
            store = ShardedStore(args.shards, wal_dir=wal_dir)
            server = KVServer(store, host="127.0.0.1", port=0)
            await server.start()
            try:
                client = await KVClient.connect(
                    server.host, server.port, protocol_version=2
                )
                print(
                    f"HELLO 2 -> negotiated protocol "
                    f"v{client.protocol_version}"
                )
                keys = [f"account:{i:02d}" for i in range(args.keys)]
                await client.multi([("put", key, "100") for key in keys])
                token = await client.snapshot()
                print(f"SNAP -> {token}")
                count = await client.multi(
                    [("put", key, "250") for key in keys]
                )
                shards = sorted(
                    {hash_shard_index(key, args.shards) for key in keys}
                )
                print(
                    f"MULTI applied {count} ops atomically across "
                    f"shards {shards}"
                )
                rows = []
                for key in keys:
                    rows.append(
                        (
                            key,
                            await client.get(key, at=token),
                            await client.get(key),
                        )
                    )
                print(
                    format_table(
                        ["key", "AT snapshot", "latest"],
                        rows,
                        title="snapshot isolation: reads at the token "
                        "never see the later MULTI",
                    )
                )
                await client.end_snapshot(token)
                await client.close()
            finally:
                await server.stop()
                store.close()

    asyncio.run(demo())
    return 0


def command_fault_sweep(args: argparse.Namespace) -> int:
    """Run the crash-consistency sweep; non-zero exit on any violation."""
    import os

    from .faults.sweep import run_sweep

    if args.list:
        from .faults.registry import FAILPOINTS, failpoint_kinds

        print(
            format_table(
                ["failpoint", "site", "kinds", "description"],
                [
                    (
                        fp.name,
                        fp.site,
                        ",".join(failpoint_kinds(fp.name)),
                        fp.description,
                    )
                    for fp in sorted(
                        FAILPOINTS.values(), key=lambda fp: fp.name
                    )
                ],
                title=f"failpoint catalog ({len(FAILPOINTS)} sites)",
            )
        )
        return 0
    quick = args.quick or os.environ.get("REPRO_SWEEP_QUICK", "") not in (
        "",
        "0",
    )
    report = run_sweep(quick=quick, seed=args.seed)
    mode = "quick" if quick else "full"
    print(f"fault sweep ({mode}, seed={args.seed})")
    print(report.summary())
    return 1 if report.violations else 0


def _parse_node_specs(specs: List[str]):
    """``ID=HOST:PORT`` specs → NodeInfo list (SystemExit on bad input)."""
    from .cluster import NodeInfo

    nodes = []
    for spec in specs:
        try:
            node_id, _, address = spec.partition("=")
            host, _, port_text = address.rpartition(":")
            if not (node_id and host and port_text):
                raise ValueError(spec)
            nodes.append(NodeInfo(node_id, host, int(port_text)))
        except ValueError:
            raise SystemExit(
                f"--node wants ID=HOST:PORT, got {spec!r}"
            ) from None
    return nodes


def command_cluster_init(args: argparse.Namespace) -> int:
    """Lay out a fresh cluster: one directory + map copy per node."""
    import os

    from .cluster import ClusterMap

    nodes = _parse_node_specs(args.node)
    if not nodes:
        raise SystemExit("cluster init needs at least one --node ID=HOST:PORT")
    if args.replicas and len(nodes) < 2:
        raise SystemExit("--replicas needs at least two nodes")
    cluster_map = ClusterMap.even(args.shards, nodes, replicated=args.replicas)
    for node in nodes:
        node_dir = os.path.join(args.data_dir, node.node_id)
        os.makedirs(node_dir, exist_ok=True)
        cluster_map.save(node_dir)
    print(
        format_table(
            ["node", "address", "shards", "replica-of"],
            [
                (
                    node.node_id,
                    node.address,
                    ",".join(map(str, cluster_map.shards_of(node.node_id))),
                    ",".join(
                        map(str, cluster_map.replicas_of(node.node_id))
                    )
                    or "-",
                )
                for node in nodes
            ],
            title=(
                f"cluster initialised under {args.data_dir} "
                f"({args.shards} shards, epoch {cluster_map.epoch}"
                f"{', replicated' if args.replicas else ''})"
            ),
        )
    )
    return 0


def _cluster_join(args: argparse.Namespace, node_dir: str) -> None:
    """Bootstrap ``node_dir`` by joining via an existing member.

    Fetches the member's map; when this node is not yet in the directory
    it publishes a membership-only successor map (epoch + 1) naming the
    node at ``--host:--port`` to every current member, then saves the
    result locally so the ordinary recovery path can take over. Shards
    arrive later via ``cluster rebalance``.
    """
    import os

    from .cluster import ClusterMap, NodeInfo
    from .server.client import KVClient

    join_host, _, join_port = args.join.rpartition(":")
    if not (join_host and join_port):
        raise SystemExit(f"--join wants HOST:PORT, got {args.join!r}")

    async def run() -> None:
        seed = await KVClient.connect(join_host, int(join_port))
        try:
            cluster_map = ClusterMap.from_json(
                (await seed.command(["CLUSTER"]))[1]
            )
        finally:
            await seed.close()
        if args.node_id not in cluster_map.nodes:
            if args.host is None or args.port is None:
                raise SystemExit(
                    "--join for a new node needs --host and --port "
                    "(the address other members will reach it at)"
                )
            cluster_map = ClusterMap(
                cluster_map.assignments,
                list(cluster_map.nodes.values())
                + [NodeInfo(args.node_id, args.host, args.port)],
                epoch=cluster_map.epoch + 1,
                routing=cluster_map.routing,
                boundaries=cluster_map.boundaries or None,
            )
            payload = cluster_map.to_json()
            for node in cluster_map.nodes.values():
                if node.node_id == args.node_id:
                    continue
                member = await KVClient.connect(node.host, node.port)
                try:
                    await member.command(["CLUSTER", payload])
                finally:
                    await member.close()
        os.makedirs(node_dir, exist_ok=True)
        cluster_map.save(node_dir)

    asyncio.run(run())


def command_cluster_serve(args: argparse.Namespace) -> int:
    """Run one cluster node until SIGINT/SIGTERM (clean shutdown)."""
    import os

    from .cluster import ClusterNode, NodeStore
    from .server import maybe_install_uvloop

    if maybe_install_uvloop(True if args.uvloop else None):
        print("repro-cluster: uvloop event loop enabled", flush=True)
    elif args.uvloop:
        raise SystemExit("--uvloop requested but uvloop is not installed")
    config = LSMConfig(
        background_mode=args.background,
        num_buffers=args.num_buffers,
        buffer_size_bytes=args.buffer_bytes,
        flush_threads=args.flush_threads,
        compaction_threads=args.compaction_threads,
        wal_fsync=args.wal_fsync,
    )
    node_dir = os.path.join(args.data_dir, args.node_id)
    if args.join:
        _cluster_join(args, node_dir)
    store = NodeStore.recover(args.node_id, config, node_dir)
    options = {
        "max_connections": args.max_connections,
        "executor_threads": args.executor_threads,
        "group_commit": not args.no_group_commit,
        "owns_tree": True,
        "heartbeat_interval_s": args.heartbeat_interval,
        "lease_timeout_s": args.lease_timeout,
        "repl_sync": not args.repl_async,
        "repl_timeout_s": args.repl_timeout,
        "self_fence": args.self_fence,
    }
    if args.fence_timeout is not None:
        options["fence_timeout_s"] = args.fence_timeout
    if args.peer_proxy:
        options["dial_overrides"] = {
            node.node_id: (node.host, node.port)
            for node in _parse_node_specs(args.peer_proxy)
        }
    if args.host is not None:
        options["host"] = args.host
    if args.port is not None:
        options["port"] = args.port
    server = ClusterNode(store, **options)

    async def run() -> None:
        await server.start()
        print(
            f"repro-cluster node {store.node_id} listening on "
            f"{server.host}:{server.port} (epoch {store.map.epoch}, "
            f"shards {store.owned_shards()})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            print(f"repro-cluster node {store.node_id} shutting down",
                  flush=True)
            await server.stop()

    asyncio.run(run())
    return 0


def command_cluster_status(args: argparse.Namespace) -> int:
    """Fetch the map from one node, then poll every member's HEALTH.

    Every wire interaction (the map fetch and each member's HEALTH) is
    bounded by ``--timeout`` so one hung node can't wedge the whole
    status report. With replication in the map the report adds per-node
    liveness (the freshest heartbeat age any peer reports for the node)
    and a per-shard table with the primary's replication lag.
    """
    import json

    from .cluster import ClusterMap
    from .server.client import KVClient

    timeout = args.timeout

    async def fetch_health(node) -> dict:
        client = await asyncio.wait_for(
            KVClient.connect(node.host, node.port, timeout_s=timeout),
            timeout,
        )
        try:
            return json.loads(
                (await asyncio.wait_for(client.command(["HEALTH"]), timeout))[
                    1
                ]
            )
        finally:
            await client.close()

    async def run() -> int:
        seed = await asyncio.wait_for(
            KVClient.connect(args.host, args.port, timeout_s=timeout),
            timeout,
        )
        try:
            reply = await asyncio.wait_for(seed.command(["CLUSTER"]), timeout)
            cluster_map = ClusterMap.from_json(reply[1])
        finally:
            await seed.close()
        healths: dict = {}
        errors: dict = {}

        # All members probed concurrently: a hung or partitioned node
        # costs one --timeout total, not one per node ahead of it in
        # the roster. Each probe is individually bounded, and the
        # gather is bounded once more so the whole poll phase can never
        # exceed --timeout either.
        async def probe(node_id, node) -> None:
            try:
                healths[node_id] = await fetch_health(node)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                errors[node_id] = str(exc) or type(exc).__name__

        members = sorted(cluster_map.nodes.items())
        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(probe(node_id, node) for node_id, node in members)
                ),
                timeout,
            )
        except asyncio.TimeoutError:
            pass
        for node_id, _node in members:
            if node_id not in healths and node_id not in errors:
                errors[node_id] = "status poll timed out"
        rows = []
        for node_id, node in sorted(cluster_map.nodes.items()):
            shards = ",".join(map(str, cluster_map.shards_of(node_id)))
            replicas = (
                ",".join(map(str, cluster_map.replicas_of(node_id))) or "-"
            )
            # Liveness as the freshest heartbeat age any *peer* reports:
            # a node can answer HEALTH yet be partitioned from the ring.
            ages = [
                peer_health["peers"][node_id]
                for peer_id, peer_health in healths.items()
                if peer_id != node_id
                and node_id in peer_health.get("peers", {})
            ]
            seen = f"{min(ages):.1f}s ago" if ages else "-"
            if node_id in healths:
                health = healths[node_id]
                rows.append(
                    (node_id, node.address, shards, replicas,
                     health.get("state", "?"), health.get("epoch", "?"),
                     seen)
                )
            else:
                rows.append(
                    (node_id, node.address, shards, replicas,
                     f"unreachable ({errors[node_id]})", "-", seen)
                )
        print(
            format_table(
                ["node", "address", "shards", "replica-of", "health",
                 "epoch", "heartbeat"],
                rows,
                title=(
                    f"cluster status via {args.host}:{args.port} "
                    f"(epoch {cluster_map.epoch}, "
                    f"{cluster_map.num_shards} shards, "
                    f"{cluster_map.routing} routing)"
                ),
            )
        )
        repl_rows = []
        for shard in range(cluster_map.num_shards):
            replica_id = cluster_map.replica_id(shard)
            if replica_id is None:
                continue
            owner_id = cluster_map.owner_id(shard)
            ship = (
                healths.get(owner_id, {})
                .get("replication", {})
                .get(str(shard), {})
            )
            repl_rows.append(
                (
                    shard,
                    owner_id,
                    replica_id,
                    ship.get("state", "?"),
                    ship.get("lag_records", "?"),
                    ship.get("lag_bytes", "?"),
                    ship.get("missed_records", "?"),
                )
            )
        if repl_rows:
            print()
            print(
                format_table(
                    ["shard", "primary", "replica", "state", "lag-records",
                     "lag-bytes", "missed"],
                    repl_rows,
                    title="replication (as reported by each primary)",
                )
            )
        return 0

    return asyncio.run(run())


def command_cluster_migrate(args: argparse.Namespace) -> int:
    """Ask the contacted node to live-migrate one shard it owns."""
    import json

    from .server.client import KVClient

    async def run() -> int:
        client = await KVClient.connect(args.host, args.port)
        try:
            reply = await client.command(
                ["MIGRATE", str(args.shard), args.to]
            )
        finally:
            await client.close()
        stats = json.loads(reply[1])
        print(
            format_table(
                ["stat", "value"],
                sorted(stats.items()),
                title=f"migrated shard {args.shard} -> {args.to}",
            )
        )
        return 0

    return asyncio.run(run())


def command_cluster_rebalance(args: argparse.Namespace) -> int:
    """Plan (and unless --dry-run, execute) moves onto a target membership."""
    import json

    from .cluster import ClusterMap
    from .server.client import KVClient

    async def run() -> int:
        seed = await KVClient.connect(args.host, args.port)
        try:
            cluster_map = ClusterMap.from_json(
                (await seed.command(["CLUSTER"]))[1]
            )
        finally:
            await seed.close()
        desired = (
            _parse_node_specs(args.node)
            if args.node
            else sorted(cluster_map.nodes.values(), key=lambda n: n.node_id)
        )
        moves = cluster_map.plan_moves(desired)
        if not moves:
            print("cluster already balanced; nothing to move")
            return 0
        if args.dry_run:
            print(
                format_table(
                    ["shard", "from", "to"],
                    [
                        (shard, cluster_map.owner_id(shard), dest)
                        for shard, dest in moves
                    ],
                    title=f"rebalance plan ({len(moves)} moves, dry run)",
                )
            )
            return 0
        joining = [n for n in desired if n.node_id not in cluster_map.nodes]
        if joining:
            # Joining nodes must be in the directory before MIGRATE can
            # target them: publish a membership-only map (epoch + 1) to
            # every member, old and new.
            cluster_map = ClusterMap(
                cluster_map.assignments,
                list(cluster_map.nodes.values()) + joining,
                epoch=cluster_map.epoch + 1,
                routing=cluster_map.routing,
                boundaries=cluster_map.boundaries or None,
            )
            payload = cluster_map.to_json()
            for node in cluster_map.nodes.values():
                client = await KVClient.connect(node.host, node.port)
                try:
                    await client.command(["CLUSTER", payload])
                finally:
                    await client.close()
        rows = []
        for shard, dest in moves:
            owner = cluster_map.owner(shard)
            client = await KVClient.connect(owner.host, owner.port)
            try:
                reply = await client.command(
                    ["MIGRATE", str(shard), dest]
                )
                cluster_map = ClusterMap.from_json(
                    (await client.command(["CLUSTER"]))[1]
                )
            finally:
                await client.close()
            stats = json.loads(reply[1])
            rows.append(
                (shard, owner.node_id, dest,
                 stats["snapshot_pairs"], stats["tail_ops"],
                 f"{stats['fence_ms']:.1f}")
            )
        print(
            format_table(
                ["shard", "from", "to", "snapshot pairs", "tail ops",
                 "fence (ms)"],
                rows,
                title=(
                    f"rebalanced {len(moves)} shards "
                    f"(map now epoch {cluster_map.epoch})"
                ),
            )
        )
        return 0

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LSM design-space explorer (SIGMOD 2022 tutorial repro)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    workload = subparsers.add_parser(
        "workload", help="replay a YCSB-style preset against one tuning"
    )
    workload.add_argument(
        "--preset", choices=sorted(PRESETS), default="a"
    )
    workload.add_argument("--ops", type=int, default=10_000)
    workload.add_argument("--keys", type=int, default=5_000)
    _add_config_arguments(workload)
    workload.set_defaults(func=command_workload)

    for name, func, needs_eta in [
        ("tune", command_tune, False),
        ("robust", command_robust, True),
    ]:
        sub = subparsers.add_parser(
            name, help=f"{name} a configuration from a workload mix"
        )
        sub.add_argument("--reads", type=float, default=0.25)
        sub.add_argument("--empty-reads", type=float, default=0.25)
        sub.add_argument("--scans", type=float, default=0.25)
        sub.add_argument("--writes", type=float, default=0.25)
        sub.add_argument("--entries", type=int, default=10_000_000)
        sub.add_argument("--entry-bytes", type=int, default=128)
        sub.add_argument(
            "--memory-bytes", type=int, default=16 * 1024 * 1024
        )
        if needs_eta:
            sub.add_argument("--eta", type=float, default=0.5)
        sub.set_defaults(func=func)

    layouts = subparsers.add_parser(
        "layouts", help="compare the five data layouts on random inserts"
    )
    layouts.add_argument("--keys", type=int, default=8_000)
    layouts.set_defaults(func=command_layouts)

    serve = subparsers.add_parser(
        "serve", help="run the asyncio KV server over one LSM tree"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7379)
    serve.add_argument(
        "--background",
        action="store_true",
        help="run flush/compaction on worker threads (recommended)",
    )
    serve.add_argument("--num-buffers", type=int, default=4)
    serve.add_argument("--buffer-bytes", type=int, default=64 * 1024)
    serve.add_argument("--flush-threads", type=int, default=2)
    serve.add_argument("--compaction-threads", type=int, default=2)
    serve.add_argument(
        "--wal-dir", default=None, help="directory for durable WAL segments"
    )
    serve.add_argument(
        "--wal-fsync",
        action="store_true",
        help="fsync the WAL on every commit (needs --wal-dir)",
    )
    serve.add_argument("--max-connections", type=int, default=128)
    serve.add_argument(
        "--executor-threads",
        type=int,
        default=None,
        help="engine thread pool size (default: max(4, shard count))",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="hash-shard the engine into N independent trees, each with "
        "its own WAL and group committer",
    )
    serve.add_argument(
        "--replication",
        choices=("off", "sync", "async"),
        default="off",
        help="give every shard a WAL-shipping replica with automatic "
        "failover (needs --wal-dir; sync acks after replica durability)",
    )
    serve.add_argument(
        "--no-group-commit",
        action="store_true",
        help="commit every request separately (benchmark baseline)",
    )
    serve.add_argument(
        "--uvloop",
        action="store_true",
        help="run on uvloop (fails if uvloop is not installed; "
        "REPRO_UVLOOP=1 requests it opportunistically instead)",
    )
    serve.set_defaults(func=command_serve)

    bench_serve = subparsers.add_parser(
        "bench-serve",
        help="closed-loop server benchmark: group commit on vs. off",
    )
    bench_serve.add_argument("--clients", type=int, default=8)
    bench_serve.add_argument("--pipeline", type=int, default=8)
    bench_serve.add_argument(
        "--ops", type=int, default=300, help="writes per client"
    )
    bench_serve.add_argument("--value-bytes", type=int, default=64)
    bench_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="back the server with N hash-routed shards",
    )
    bench_serve.add_argument(
        "--uvloop",
        action="store_true",
        help="run on uvloop (fails if uvloop is not installed; "
        "REPRO_UVLOOP=1 requests it opportunistically instead)",
    )
    bench_serve.set_defaults(func=command_bench_serve)

    txn_demo = subparsers.add_parser(
        "txn-demo",
        help="protocol-v2 walkthrough: HELLO handshake, snapshot "
        "reads, cross-shard atomic MULTI",
    )
    txn_demo.add_argument("--shards", type=int, default=4)
    txn_demo.add_argument("--keys", type=int, default=8)
    txn_demo.set_defaults(func=command_txn_demo)

    fault_sweep = subparsers.add_parser(
        "fault-sweep",
        help="crash at every failpoint crossing and verify recovery",
    )
    fault_sweep.add_argument(
        "--quick",
        action="store_true",
        help="sample the crossing set (also via REPRO_SWEEP_QUICK=1)",
    )
    fault_sweep.add_argument(
        "--list",
        action="store_true",
        help="print the failpoint catalog (name, site, supported fault "
        "kinds) and exit without running the sweep",
    )
    fault_sweep.add_argument("--seed", type=int, default=7)
    fault_sweep.set_defaults(func=command_fault_sweep)

    cluster = subparsers.add_parser(
        "cluster",
        help="multi-node serving: init, serve, status, migrate, rebalance",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_init = cluster_sub.add_parser(
        "init", help="write an even cluster map into every node directory"
    )
    cluster_init.add_argument("--data-dir", required=True)
    cluster_init.add_argument("--shards", type=int, default=8)
    cluster_init.add_argument(
        "--node",
        action="append",
        default=[],
        metavar="ID=HOST:PORT",
        help="cluster member (repeat once per node)",
    )
    cluster_init.add_argument(
        "--replicas",
        action="store_true",
        help="place a warm replica of every shard on the next node "
        "(enables heartbeat failover)",
    )
    cluster_init.set_defaults(func=command_cluster_init)

    cluster_serve = cluster_sub.add_parser(
        "serve", help="run one cluster node from its data directory"
    )
    cluster_serve.add_argument("--data-dir", required=True)
    cluster_serve.add_argument("--node-id", required=True)
    cluster_serve.add_argument(
        "--host", default=None, help="bind address override (default: map)"
    )
    cluster_serve.add_argument(
        "--port", type=int, default=None,
        help="bind port override (default: map)",
    )
    cluster_serve.add_argument(
        "--join", default=None, metavar="HOST:PORT",
        help="bootstrap by joining via an existing member (a new node "
        "also needs --host/--port; give it shards with rebalance)",
    )
    cluster_serve.add_argument("--background", action="store_true")
    cluster_serve.add_argument("--num-buffers", type=int, default=4)
    cluster_serve.add_argument("--buffer-bytes", type=int, default=64 * 1024)
    cluster_serve.add_argument("--flush-threads", type=int, default=2)
    cluster_serve.add_argument("--compaction-threads", type=int, default=2)
    cluster_serve.add_argument("--wal-fsync", action="store_true")
    cluster_serve.add_argument("--max-connections", type=int, default=128)
    cluster_serve.add_argument(
        "--executor-threads", type=int, default=None
    )
    cluster_serve.add_argument("--no-group-commit", action="store_true")
    cluster_serve.add_argument("--uvloop", action="store_true")
    cluster_serve.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="peer heartbeat cadence (jittered; default 1.0)",
    )
    cluster_serve.add_argument(
        "--lease-timeout", type=float, default=None, metavar="SECONDS",
        help="silence before a replica declares a primary dead and "
        "promotes (default: 4x heartbeat interval)",
    )
    cluster_serve.add_argument(
        "--repl-async", action="store_true",
        help="ack writes without waiting for the replica (a failover "
        "may then lose the in-flight window)",
    )
    cluster_serve.add_argument(
        "--repl-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request bound on replication wire calls (default 5.0)",
    )
    cluster_serve.add_argument(
        "--self-fence", action="store_true",
        help="stop acking sync-replicated writes (retryable BUSY) when "
        "the standby has been silent past the fence window — closes "
        "the split-brain window under partitions at the cost of write "
        "availability while fenced",
    )
    cluster_serve.add_argument(
        "--fence-timeout", type=float, default=None, metavar="SECONDS",
        help="standby silence before the primary self-fences (default: "
        "lease timeout minus two heartbeat intervals — strictly inside "
        "the window in which the standby could promote)",
    )
    cluster_serve.add_argument(
        "--peer-proxy", action="append", default=[],
        metavar="NODE_ID=HOST:PORT",
        help="dial this peer via HOST:PORT instead of its map address "
        "(repeat per peer; routes node-to-node traffic through a relay "
        "such as the repro.faults.net proxy for partition drills)",
    )
    cluster_serve.set_defaults(func=command_cluster_serve)

    cluster_status = cluster_sub.add_parser(
        "status", help="print the map and every member's health"
    )
    cluster_status.add_argument("--host", default="127.0.0.1")
    cluster_status.add_argument("--port", type=int, default=7401)
    cluster_status.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="bound on every map/health fetch (default 5.0)",
    )
    cluster_status.set_defaults(func=command_cluster_status)

    cluster_migrate = cluster_sub.add_parser(
        "migrate", help="live-migrate one shard to another node"
    )
    cluster_migrate.add_argument("--host", default="127.0.0.1")
    cluster_migrate.add_argument(
        "--port", type=int, default=7401,
        help="address of the shard's current owner",
    )
    cluster_migrate.add_argument("--shard", type=int, required=True)
    cluster_migrate.add_argument(
        "--to", required=True, metavar="NODE_ID"
    )
    cluster_migrate.set_defaults(func=command_cluster_migrate)

    cluster_rebalance = cluster_sub.add_parser(
        "rebalance",
        help="migrate shards until the membership is evenly loaded",
    )
    cluster_rebalance.add_argument("--host", default="127.0.0.1")
    cluster_rebalance.add_argument("--port", type=int, default=7401)
    cluster_rebalance.add_argument(
        "--node",
        action="append",
        default=[],
        metavar="ID=HOST:PORT",
        help="desired membership after the rebalance (repeat; default: "
        "current members)",
    )
    cluster_rebalance.add_argument(
        "--dry-run", action="store_true", help="print the plan, move nothing"
    )
    cluster_rebalance.set_defaults(func=command_cluster_rebalance)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
