"""Command-line interface: drive workloads and tuning from a shell.

Usage::

    python -m repro.cli workload --preset a --ops 20000 --layout leveling
    python -m repro.cli tune --reads 0.5 --empty-reads 0.2 --scans 0.1 \
        --writes 0.2
    python -m repro.cli robust --writes 0.9 --reads 0.05 --empty-reads 0.05 \
        --eta 1.0
    python -m repro.cli layouts --ops 20000

Every subcommand prints the same ASCII tables the benchmark suite uses, so
shell exploration and the archived experiment results read identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.harness import Harness
from .bench.report import format_table
from .core.config import LAYOUT_KINDS, PICKER_KINDS, LSMConfig
from .core.tree import LSMTree
from .cost.model import SystemEnv, WorkloadMix
from .cost.navigator import Navigator
from .cost.robust import RobustTuner
from .workload.generator import PRESETS


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--layout", choices=LAYOUT_KINDS, default="leveling")
    parser.add_argument("--size-ratio", type=int, default=4)
    parser.add_argument("--buffer-bytes", type=int, default=64 * 1024)
    parser.add_argument("--bits-per-key", type=float, default=10.0)
    parser.add_argument(
        "--allocation", choices=("none", "uniform", "monkey"), default="uniform"
    )
    parser.add_argument("--picker", choices=PICKER_KINDS, default="least_overlap")
    parser.add_argument("--cache-bytes", type=int, default=0)


def _config_from(args: argparse.Namespace) -> LSMConfig:
    return LSMConfig(
        layout=args.layout,
        size_ratio=args.size_ratio,
        buffer_size_bytes=args.buffer_bytes,
        filter_bits_per_key=args.bits_per_key,
        filter_allocation=(
            args.allocation if args.allocation != "none" else "uniform"
        ),
        picker=args.picker,
        block_cache_bytes=args.cache_bytes,
        granularity="file" if args.layout in ("leveling", "hybrid") else "level",
    )


def _mix_from(args: argparse.Namespace) -> WorkloadMix:
    return WorkloadMix(
        empty_lookups=args.empty_reads,
        lookups=args.reads,
        short_scans=args.scans,
        writes=args.writes,
    )


def command_workload(args: argparse.Namespace) -> int:
    """Replay a YCSB-style preset and print the measured metric set."""
    factory = PRESETS[args.preset]
    spec = factory(num_ops=args.ops, key_count=args.keys)
    tree = LSMTree(_config_from(args))
    metrics = Harness(tree).run_spec(spec)
    print(
        format_table(
            ["metric", "value"],
            [
                ("operations", metrics.operations),
                ("simulated time (ms)", metrics.simulated_us / 1000.0),
                ("throughput (kops/sim-s)", metrics.throughput_kops),
                ("write amplification", metrics.write_amplification),
                ("space amplification", tree.space_amplification()),
                ("pages read/op", metrics.pages_read_per_op()),
                ("write p99 (us)", metrics.write_latencies_us.get("p99", 0.0)),
                ("read p99 (us)", metrics.read_latencies_us.get("p99", 0.0)),
                ("compactions", tree.stats.compactions),
                ("stall events", tree.stats.stall_events),
            ],
            title=f"workload '{args.preset}' on {args.layout}/T={args.size_ratio}",
        )
    )
    return 0


def command_tune(args: argparse.Namespace) -> int:
    """Recommend a tuning for a workload mix via the cost model."""
    env = SystemEnv(
        total_entries=args.entries,
        entry_size_bytes=args.entry_bytes,
        memory_budget_bytes=args.memory_bytes,
    )
    result = Navigator(env).tune(_mix_from(args))
    tuning = result.tuning
    print(
        format_table(
            ["knob", "recommendation"],
            [
                ("layout", tuning.layout),
                ("size ratio T", tuning.size_ratio),
                ("buffer share of memory", f"{tuning.buffer_fraction:.0%}"),
                ("filter allocation", "monkey" if tuning.monkey else "uniform"),
                ("predicted I/O per op", f"{result.cost:.4f}"),
                (
                    "margin over next layout",
                    f"{result.margin:.0%}" if result.runner_up else "n/a",
                ),
            ],
            title="recommended tuning",
        )
    )
    return 0


def command_robust(args: argparse.Namespace) -> int:
    """Min-max tuning under workload uncertainty (Endure-style)."""
    env = SystemEnv(
        total_entries=args.entries,
        entry_size_bytes=args.entry_bytes,
        memory_budget_bytes=args.memory_bytes,
    )
    result = RobustTuner(env).tune(_mix_from(args), args.eta)
    print(
        format_table(
            ["quantity", "nominal-optimal", "robust"],
            [
                (
                    "tuning",
                    f"{result.nominal_tuning.layout}"
                    f"/T={result.nominal_tuning.size_ratio}",
                    f"{result.robust_tuning.layout}"
                    f"/T={result.robust_tuning.size_ratio}",
                ),
                (
                    "cost at expected workload",
                    f"{result.nominal_nominal_cost:.4f}",
                    f"{result.robust_nominal_cost:.4f}",
                ),
                (
                    "worst-case cost in eta-ball",
                    f"{result.nominal_worst_cost:.4f}",
                    f"{result.robust_worst_cost:.4f}",
                ),
                ("protection", "-", f"{result.protection:.0%}"),
                ("nominal premium", "-", f"{result.premium:.0%}"),
            ],
            title=f"robust tuning, eta={args.eta}",
        )
    )
    return 0


def command_layouts(args: argparse.Namespace) -> int:
    """Quick layout comparison on a mixed workload (a mini experiment E2)."""
    import random

    rows = []
    keys = [f"key{i:08d}" for i in range(args.keys)]
    random.Random(1).shuffle(keys)
    for layout in LAYOUT_KINDS:
        config = LSMConfig(
            layout=layout,
            buffer_size_bytes=4096,
            target_file_bytes=4096,
            block_bytes=1024,
            granularity="file" if layout in ("leveling", "hybrid") else "level",
        )
        tree = LSMTree(config)
        for key in keys[: args.keys]:
            tree.put(key, "v" * 24)
        rows.append(
            (
                layout,
                tree.write_amplification(),
                tree.space_amplification(),
                tree.total_run_count(),
                tree.stats.compactions,
            )
        )
    print(
        format_table(
            ["layout", "write amp", "space amp", "runs", "compactions"],
            rows,
            title=f"layout comparison, {args.keys} random inserts",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LSM design-space explorer (SIGMOD 2022 tutorial repro)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    workload = subparsers.add_parser(
        "workload", help="replay a YCSB-style preset against one tuning"
    )
    workload.add_argument(
        "--preset", choices=sorted(PRESETS), default="a"
    )
    workload.add_argument("--ops", type=int, default=10_000)
    workload.add_argument("--keys", type=int, default=5_000)
    _add_config_arguments(workload)
    workload.set_defaults(func=command_workload)

    for name, func, needs_eta in [
        ("tune", command_tune, False),
        ("robust", command_robust, True),
    ]:
        sub = subparsers.add_parser(
            name, help=f"{name} a configuration from a workload mix"
        )
        sub.add_argument("--reads", type=float, default=0.25)
        sub.add_argument("--empty-reads", type=float, default=0.25)
        sub.add_argument("--scans", type=float, default=0.25)
        sub.add_argument("--writes", type=float, default=0.25)
        sub.add_argument("--entries", type=int, default=10_000_000)
        sub.add_argument("--entry-bytes", type=int, default=128)
        sub.add_argument(
            "--memory-bytes", type=int, default=16 * 1024 * 1024
        )
        if needs_eta:
            sub.add_argument("--eta", type=float, default=0.5)
        sub.set_defaults(func=func)

    layouts = subparsers.add_parser(
        "layouts", help="compare the five data layouts on random inserts"
    )
    layouts.add_argument("--keys", type=int, default=8_000)
    layouts.set_defaults(func=command_layouts)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
