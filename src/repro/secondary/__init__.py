"""Secondary indexing over LSM trees (§2.1.3, §2.3.4)."""

from .index import IndexedStore, composite_key, split_composite

__all__ = ["IndexedStore", "composite_key", "split_composite"]
