"""Secondary indexing over an LSM tree (§2.1.3, §2.3.4).

"Several approaches have also focussed on optimizing reads on secondary
(non-key) attributes through secondary indexing techniques." In
LSM-based stores the standard design is an *auxiliary LSM tree* whose keys
are ``(attribute value, primary key)`` composites — itself ingestion-
optimized, maintained either eagerly (synchronous, consistent) or lazily
(deferred, DELI-style validation at query time).

The tutorial's open-challenges section notes why deletes make this hard
(§2.3.4): "supporting timely and persistent deletes on secondary
attributes is hard in LSM engines, particularly for point secondary
deletes" — the old attribute value is unknown at delete time without a
read. This module implements both maintenance modes so the tradeoff is
measurable:

* **eager**: every write reads the old record to remove its stale index
  entry (read-before-write cost, always-consistent index);
* **lazy**: writes blindly append index entries; queries validate each
  candidate against the primary tree and drop stale hits (cheap writes,
  query-time validation cost).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..core.config import LSMConfig
from ..core.tree import LSMTree
from ..errors import ConfigError
from ..storage.disk import SimulatedDisk

#: Separator for composite index keys; sorts below all printable chars so
#: composite ordering matches (value, primary-key) ordering.
_SEP = "\x01"


def composite_key(attribute_value: str, primary_key: str) -> str:
    """The index key for one (attribute value, primary key) pair."""
    if _SEP in attribute_value or _SEP in primary_key:
        raise ValueError("attribute values and keys must not contain \\x01")
    return f"{attribute_value}{_SEP}{primary_key}"


def split_composite(index_key: str) -> Tuple[str, str]:
    """Inverse of :func:`composite_key`."""
    value, _sep, primary = index_key.partition(_SEP)
    if not _sep:
        raise ValueError(f"not a composite index key: {index_key!r}")
    return value, primary


class IndexedStore:
    """A primary LSM tree plus one secondary index over a record field.

    Records are flat JSON objects; the indexed ``field``'s string value is
    what secondary queries search by.

    Args:
        field: Record attribute the secondary index covers.
        mode: ``eager`` or ``lazy`` maintenance (see module docstring).
        config: Configuration shared by both trees.
        disk: Shared device so total cost is read off one counter set.
    """

    def __init__(
        self,
        field: str,
        mode: str = "eager",
        config: Optional[LSMConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        if mode not in ("eager", "lazy"):
            raise ConfigError("mode must be 'eager' or 'lazy'")
        self.field = field
        self.mode = mode
        self.disk = disk or SimulatedDisk()
        self.primary = LSMTree(config, disk=self.disk)
        self.index = LSMTree(config, disk=self.disk)
        self.stale_hits_dropped = 0

    # -- write path ------------------------------------------------------------

    def put(self, key: str, record: Dict[str, str]) -> None:
        """Insert or update a record, maintaining the index per the mode."""
        value = record.get(self.field)
        if self.mode == "eager":
            self._remove_stale_entry(key)
        if value is not None:
            self.index.put(composite_key(value, key), "")
        self.primary.put(key, json.dumps(record, separators=(",", ":")))

    def delete(self, key: str) -> None:
        """Delete a record; eager mode also purges its index entry.

        Lazy mode cannot (the old attribute value is unknown without a
        read — the §2.3.4 problem); the stale entry is dropped at query
        time instead.
        """
        if self.mode == "eager":
            self._remove_stale_entry(key)
        self.primary.delete(key)

    def _remove_stale_entry(self, key: str) -> None:
        previous = self.primary.get(key)  # the read-before-write cost
        if previous is None:
            return
        old_value = json.loads(previous).get(self.field)
        if old_value is not None:
            self.index.delete(composite_key(old_value, key))

    # -- read path ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, str]]:
        """Primary-key lookup."""
        raw = self.primary.get(key)
        return None if raw is None else json.loads(raw)

    def find_by_value(self, value: str) -> List[Tuple[str, Dict[str, str]]]:
        """Secondary lookup: all records whose field equals ``value``."""
        results: List[Tuple[str, Dict[str, str]]] = []
        lo = value + _SEP
        hi = value + _SEP + "\U0010ffff"
        for index_key, _empty in self.index.scan(lo, hi):
            _value, primary_key = split_composite(index_key)
            raw = self.primary.get(primary_key)
            if raw is None:
                self._note_stale(index_key)
                continue
            record = json.loads(raw)
            if record.get(self.field) != value:
                self._note_stale(index_key)
                continue
            results.append((primary_key, record))
        return results

    def find_value_range(
        self, lo_value: str, hi_value: str
    ) -> List[Tuple[str, Dict[str, str]]]:
        """Secondary range query over the indexed attribute."""
        results: List[Tuple[str, Dict[str, str]]] = []
        for index_key, _empty in self.index.scan(lo_value, hi_value):
            value, primary_key = split_composite(index_key)
            raw = self.primary.get(primary_key)
            if raw is None:
                self._note_stale(index_key)
                continue
            record = json.loads(raw)
            if record.get(self.field) != value:
                self._note_stale(index_key)
                continue
            results.append((primary_key, record))
        return results

    def _note_stale(self, index_key: str) -> None:
        """Lazy-mode cleanup: validation failed, so drop the entry now
        (deferred maintenance à la DELI)."""
        self.stale_hits_dropped += 1
        self.index.delete(index_key)

    # -- metrics --------------------------------------------------------------------

    def index_entry_count(self) -> int:
        """Live index entries (includes stale ones in lazy mode)."""
        return len(self.index.scan("", "\U0010ffff"))

    def write_amplification(self) -> float:
        """Device bytes written per primary user byte."""
        user = self.primary.stats.user_bytes_written
        if user == 0:
            return 0.0
        return self.disk.counters.bytes_written / user
