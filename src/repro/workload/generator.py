"""Operation-stream generation: YCSB-style workload mixes.

A :class:`WorkloadSpec` fixes the operation mix (reads, inserts, updates,
scans, deletes, read-modify-writes), the key-popularity distribution, and
the payload shape; :func:`generate` turns it into a deterministic stream of
:class:`Operation` values that the benchmark harness replays against any
engine. The YCSB core workloads A-F plus a delete-heavy mix (for the Lethe
experiments, §2.3.3) are provided as presets.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from .distributions import KeyDistribution, format_key, make_distribution


class OpKind(enum.Enum):
    """External operations an LSM store serves (§2.1.2)."""

    READ = "read"
    INSERT = "insert"
    UPDATE = "update"
    SCAN = "scan"
    DELETE = "delete"
    SINGLE_DELETE = "single_delete"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class Operation:
    """One operation of a workload trace."""

    kind: OpKind
    key: str
    value: Optional[str] = None
    end_key: Optional[str] = None  # for scans

    def __repr__(self) -> str:
        if self.kind is OpKind.SCAN:
            return f"Operation(SCAN {self.key}..{self.end_key})"
        return f"Operation({self.kind.name} {self.key})"


@dataclass(frozen=True)
class WorkloadSpec:
    """A parameterized workload.

    Attributes:
        num_ops: Operations to generate.
        key_count: Size of the pre-loaded key universe; inserts append new
            keys beyond it.
        read/update/insert/scan/delete/single_delete/rmw_fraction: The
            operation mix; must sum to 1.
        distribution: Key popularity: ``uniform`` | ``zipfian`` | ``latest``
            | ``sequential``.
        theta: Zipfian skew, when applicable.
        value_size: Payload bytes per written value.
        scan_width_keys: Keys spanned by each scan's interval.
        seed: Determinism seed.
    """

    num_ops: int = 10_000
    key_count: int = 10_000
    read_fraction: float = 0.5
    update_fraction: float = 0.5
    insert_fraction: float = 0.0
    scan_fraction: float = 0.0
    delete_fraction: float = 0.0
    single_delete_fraction: float = 0.0
    rmw_fraction: float = 0.0
    distribution: str = "zipfian"
    theta: float = 0.99
    value_size: int = 64
    scan_width_keys: int = 50
    seed: int = 42

    def __post_init__(self) -> None:
        total = (
            self.read_fraction
            + self.update_fraction
            + self.insert_fraction
            + self.scan_fraction
            + self.delete_fraction
            + self.single_delete_fraction
            + self.rmw_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation fractions must sum to 1, got {total}")
        if self.num_ops < 0 or self.key_count < 1:
            raise ValueError("num_ops must be >= 0 and key_count >= 1")
        if self.value_size < 1:
            raise ValueError("value_size must be positive")

    def with_overrides(self, **overrides: object) -> "WorkloadSpec":
        """Copy with fields replaced (re-validated)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def _payload(rng: random.Random, size: int) -> str:
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(size))


def generate(spec: WorkloadSpec) -> Iterator[Operation]:
    """Yield the deterministic operation stream ``spec`` describes."""
    rng = random.Random(spec.seed)
    chooser: KeyDistribution = make_distribution(
        spec.distribution, spec.key_count, seed=spec.seed + 1, theta=spec.theta
    )
    next_insert_index = spec.key_count
    thresholds = []
    cumulative = 0.0
    for kind, fraction in [
        (OpKind.READ, spec.read_fraction),
        (OpKind.UPDATE, spec.update_fraction),
        (OpKind.INSERT, spec.insert_fraction),
        (OpKind.SCAN, spec.scan_fraction),
        (OpKind.DELETE, spec.delete_fraction),
        (OpKind.SINGLE_DELETE, spec.single_delete_fraction),
        (OpKind.READ_MODIFY_WRITE, spec.rmw_fraction),
    ]:
        cumulative += fraction
        thresholds.append((cumulative, kind))

    for _ in range(spec.num_ops):
        roll = rng.random()
        kind = next(
            op_kind for bound, op_kind in thresholds if roll <= bound + 1e-12
        )
        if kind is OpKind.INSERT:
            key = format_key(next_insert_index)
            chooser.notice_insert(next_insert_index)
            next_insert_index += 1
            yield Operation(kind, key, _payload(rng, spec.value_size))
        elif kind in (OpKind.UPDATE, OpKind.READ_MODIFY_WRITE):
            yield Operation(
                kind, chooser.next_key(), _payload(rng, spec.value_size)
            )
        elif kind is OpKind.SCAN:
            start_index = chooser.next_index()
            yield Operation(
                kind,
                format_key(start_index),
                end_key=format_key(start_index + spec.scan_width_keys),
            )
        else:  # READ / DELETE / SINGLE_DELETE
            yield Operation(kind, chooser.next_key())


def preload_operations(spec: WorkloadSpec) -> Iterator[Operation]:
    """Inserts for the initial key universe (run before the measured mix)."""
    rng = random.Random(spec.seed ^ 0xC0FFEE)
    for index in range(spec.key_count):
        yield Operation(
            OpKind.INSERT, format_key(index), _payload(rng, spec.value_size)
        )


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

def ycsb_a(**overrides: object) -> WorkloadSpec:
    """YCSB-A: 50% reads, 50% updates, zipfian (session stores)."""
    return WorkloadSpec(
        read_fraction=0.5, update_fraction=0.5
    ).with_overrides(**overrides)


def ycsb_b(**overrides: object) -> WorkloadSpec:
    """YCSB-B: 95% reads, 5% updates (photo tagging)."""
    return WorkloadSpec(
        read_fraction=0.95, update_fraction=0.05
    ).with_overrides(**overrides)


def ycsb_c(**overrides: object) -> WorkloadSpec:
    """YCSB-C: read-only (caches)."""
    return WorkloadSpec(
        read_fraction=1.0, update_fraction=0.0
    ).with_overrides(**overrides)


def ycsb_d(**overrides: object) -> WorkloadSpec:
    """YCSB-D: 95% reads of recent keys, 5% inserts (status feeds)."""
    return WorkloadSpec(
        read_fraction=0.95,
        update_fraction=0.0,
        insert_fraction=0.05,
        distribution="latest",
    ).with_overrides(**overrides)


def ycsb_e(**overrides: object) -> WorkloadSpec:
    """YCSB-E: 95% short scans, 5% inserts (threaded conversations)."""
    return WorkloadSpec(
        read_fraction=0.0,
        update_fraction=0.0,
        scan_fraction=0.95,
        insert_fraction=0.05,
    ).with_overrides(**overrides)


def ycsb_f(**overrides: object) -> WorkloadSpec:
    """YCSB-F: 50% reads, 50% read-modify-writes."""
    return WorkloadSpec(
        read_fraction=0.5, update_fraction=0.0, rmw_fraction=0.5
    ).with_overrides(**overrides)


def delete_heavy(**overrides: object) -> WorkloadSpec:
    """A Lethe-style delete-intensive mix (§2.3.3): 40% deletes."""
    return WorkloadSpec(
        read_fraction=0.2,
        update_fraction=0.2,
        insert_fraction=0.2,
        delete_fraction=0.4,
        distribution="uniform",
    ).with_overrides(**overrides)


def write_only(**overrides: object) -> WorkloadSpec:
    """Pure ingestion (bulk loading)."""
    return WorkloadSpec(
        read_fraction=0.0, update_fraction=0.0, insert_fraction=1.0
    ).with_overrides(**overrides)


PRESETS = {
    "a": ycsb_a,
    "b": ycsb_b,
    "c": ycsb_c,
    "d": ycsb_d,
    "e": ycsb_e,
    "f": ycsb_f,
    "delete_heavy": delete_heavy,
    "write_only": write_only,
}
