"""Workload traces: record, replay, and characterize operation streams.

The tutorial's workload citations lean on trace analysis — notably the
Facebook RocksDB study ("Characterizing, Modeling, and Benchmarking RocksDB
Key-Value Workloads", [23]) — and reproducible experiments need the same
discipline: a workload should be a *file* you can re-run, not a seed you
hope is stable. This module provides:

* :func:`save_trace` / :func:`load_trace` — JSONL serialization of
  operation streams (one op per line, append-friendly);
* :func:`characterize` — the summary statistics the cited study reports:
  operation mix, key-space footprint, key popularity skew, value sizes.
"""

from __future__ import annotations

import collections
import json
import math
from typing import Dict, Iterable, Iterator, List

from .generator import Operation, OpKind


def save_trace(operations: Iterable[Operation], path: str) -> int:
    """Write an operation stream to a JSONL file; returns ops written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for op in operations:
            record = {"o": op.kind.value, "k": op.key}
            if op.value is not None:
                record["v"] = op.value
            if op.end_key is not None:
                record["e"] = op.end_key
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_trace(path: str) -> Iterator[Operation]:
    """Stream operations back from a JSONL trace file.

    Raises:
        ValueError: On a malformed line (with its line number).
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield Operation(
                    OpKind(record["o"]),
                    record["k"],
                    record.get("v"),
                    record.get("e"),
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"malformed trace record at {path}:{line_number}"
                ) from exc


def characterize(operations: Iterable[Operation]) -> Dict[str, object]:
    """Summary statistics of a trace (the [23]-style characterization).

    Returns a dict with:

    * ``total_ops`` and ``mix`` — per-kind fractions;
    * ``unique_keys`` — key-space footprint;
    * ``hot_key_share`` — fraction of accesses landing on the hottest 1%
      of keys (the skew headline number);
    * ``zipf_theta_estimate`` — skew fitted from the rank-frequency curve;
    * ``avg_value_bytes`` — mean written-value size.
    """
    kind_counts: collections.Counter = collections.Counter()
    key_counts: collections.Counter = collections.Counter()
    value_bytes = 0
    value_count = 0
    total = 0
    for op in operations:
        total += 1
        kind_counts[op.kind.value] += 1
        key_counts[op.key] += 1
        if op.value is not None:
            value_bytes += len(op.value)
            value_count += 1

    frequencies = sorted(key_counts.values(), reverse=True)
    hot_keys = max(1, len(frequencies) // 100)
    hot_share = (
        sum(frequencies[:hot_keys]) / total if total else 0.0
    )
    return {
        "total_ops": total,
        "mix": {
            kind: count / total for kind, count in sorted(kind_counts.items())
        }
        if total
        else {},
        "unique_keys": len(key_counts),
        "hot_key_share": hot_share,
        "zipf_theta_estimate": _fit_zipf_theta(frequencies),
        "avg_value_bytes": value_bytes / value_count if value_count else 0.0,
    }


def _fit_zipf_theta(frequencies: List[int]) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    For a zipfian stream with skew theta, frequency(rank) ∝ rank^-theta,
    so the negative slope estimates theta. Returns 0 for degenerate
    inputs (uniform or tiny traces).
    """
    points = [
        (math.log(rank), math.log(freq))
        for rank, freq in enumerate(frequencies[:1000], start=1)
        if freq > 0
    ]
    if len(points) < 3:
        return 0.0
    n = len(points)
    sum_x = sum(x for x, _y in points)
    sum_y = sum(y for _x, y in points)
    sum_xx = sum(x * x for x, _y in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if abs(denominator) < 1e-12:
        return 0.0
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return max(0.0, -slope)
