"""Key-choice distributions for synthetic workloads.

The cited workload studies (YCSB, the Facebook RocksDB study [23]) describe
key popularity with a handful of canonical distributions; this module
implements them with O(1) sampling:

* :class:`UniformKeys` — every key equally likely.
* :class:`ZipfianKeys` — heavy-tailed popularity (the YCSB "zipfian"
  generator, Gray et al.'s algorithm), with optional hash-scrambling so the
  hot keys are scattered across the key space.
* :class:`LatestKeys` — recency-skewed: recently inserted keys are hot.
* :class:`SequentialKeys` — monotonically increasing inserts (time-series
  style), the LSM best case.
"""

from __future__ import annotations

import abc
import math
import random

#: Default zero-padded key format used across the library's experiments.
KEY_FORMAT = "key{:010d}"


def format_key(index: int) -> str:
    """Render a key index in the library's canonical zero-padded format."""
    return KEY_FORMAT.format(index)


class KeyDistribution(abc.ABC):
    """Maps a random stream onto key indexes in ``[0, key_count)``."""

    def __init__(self, key_count: int, seed: int = 0) -> None:
        if key_count < 1:
            raise ValueError("key_count must be positive")
        self.key_count = key_count
        self._rng = random.Random(seed)

    @abc.abstractmethod
    def next_index(self) -> int:
        """Sample one key index."""

    def next_key(self) -> str:
        """Sample one formatted key."""
        return format_key(self.next_index())

    def notice_insert(self, index: int) -> None:
        """Hook: the workload inserted a new largest index (for "latest")."""


class UniformKeys(KeyDistribution):
    """Uniformly random keys."""

    def next_index(self) -> int:
        return self._rng.randrange(self.key_count)


class ZipfianKeys(KeyDistribution):
    """Zipf-distributed keys via the Gray et al. / YCSB constant-time
    generator.

    Args:
        key_count: Size of the key universe.
        theta: Skew in (0, 1); YCSB's default 0.99 makes the hottest key
            ~10% of accesses for a million keys.
        scramble: Hash the rank onto the key space so popular keys are not
            clustered at the low end (YCSB's "scrambled zipfian").
        seed: RNG seed.
    """

    def __init__(
        self,
        key_count: int,
        theta: float = 0.99,
        scramble: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(key_count, seed)
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.theta = theta
        self.scramble = scramble
        self._zetan = self._zeta(key_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / key_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(count: int, theta: float) -> float:
        return sum(1.0 / (i**theta) for i in range(1, count + 1))

    def next_index(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5**self.theta:
            rank = 1
        else:
            rank = int(
                self.key_count * (self._eta * u - self._eta + 1) ** self._alpha
            )
        rank = min(rank, self.key_count - 1)
        if not self.scramble:
            return rank
        return (rank * 0x9E3779B97F4A7C15 + 0x7F4A7C15) % self.key_count


class LatestKeys(KeyDistribution):
    """Recency-skewed choice: zipfian over distance from the newest key."""

    def __init__(self, key_count: int, theta: float = 0.99, seed: int = 0) -> None:
        super().__init__(key_count, seed)
        self._zipf = ZipfianKeys(key_count, theta, scramble=False, seed=seed)
        self._max_index = key_count - 1

    def notice_insert(self, index: int) -> None:
        self._max_index = max(self._max_index, index)

    def next_index(self) -> int:
        offset = self._zipf.next_index()
        return max(0, self._max_index - offset)


class SequentialKeys(KeyDistribution):
    """Monotonically increasing keys (wraps at ``key_count``)."""

    def __init__(self, key_count: int, seed: int = 0) -> None:
        super().__init__(key_count, seed)
        self._cursor = 0

    def next_index(self) -> int:
        index = self._cursor
        self._cursor = (self._cursor + 1) % self.key_count
        return index


def make_distribution(
    name: str, key_count: int, seed: int = 0, theta: float = 0.99
) -> KeyDistribution:
    """Factory: ``uniform`` | ``zipfian`` | ``latest`` | ``sequential``."""
    if name == "uniform":
        return UniformKeys(key_count, seed)
    if name == "zipfian":
        return ZipfianKeys(key_count, theta=theta, seed=seed)
    if name == "latest":
        return LatestKeys(key_count, theta=theta, seed=seed)
    if name == "sequential":
        return SequentialKeys(key_count, seed)
    raise ValueError(f"unknown distribution {name!r}")


def zipf_hot_fraction(key_count: int, theta: float, hot_keys: int) -> float:
    """Analytic share of accesses landing on the ``hot_keys`` hottest keys."""
    zetan = sum(1.0 / (i**theta) for i in range(1, key_count + 1))
    hot = sum(1.0 / (i**theta) for i in range(1, hot_keys + 1))
    return hot / zetan if zetan else 0.0


def estimate_theta_for_hot_share(
    key_count: int, hot_fraction_keys: float, target_share: float
) -> float:
    """Find the zipf skew where ``hot_fraction_keys`` of keys get
    ``target_share`` of accesses (bisection; used to calibrate workloads)."""
    if not 0 < hot_fraction_keys < 1 or not 0 < target_share < 1:
        raise ValueError("fractions must be in (0, 1)")
    hot_keys = max(1, int(key_count * hot_fraction_keys))
    lo, hi = 0.01, 0.999
    for _ in range(40):
        mid = (lo + hi) / 2
        if zipf_hot_fraction(key_count, mid, hot_keys) < target_share:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def harmonic_mean(values: list) -> float:
    """Harmonic mean, guarding zeros (throughput aggregation helper)."""
    positives = [value for value in values if value > 0]
    if not positives:
        return 0.0
    return len(positives) / sum(1.0 / value for value in positives)


def log_spaced(start: float, stop: float, count: int) -> list:
    """``count`` log-spaced values from start to stop inclusive."""
    if count < 2:
        return [start]
    ratio = (stop / start) ** (1.0 / (count - 1))
    return [start * ratio**index for index in range(count)]


def round_to_pages(nbytes: int, page_size: int = 4096) -> int:
    """Round a byte count up to whole pages (sweep-parameter helper)."""
    return int(math.ceil(nbytes / page_size)) * page_size
