"""FASTER-style log-structured hash store (§2.2.6)."""

from .store import RECORD_OVERHEAD_BYTES, FasterStore

__all__ = ["FasterStore", "RECORD_OVERHEAD_BYTES"]
