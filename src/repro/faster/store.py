"""A FASTER-style log-structured hash store (§2.2.6).

"Chandramouli et al. introduces FASTER, a log-structured storage, that
improves the read-modify-write performance. Along with a log-structured
storage, FASTER maintains an in-memory hash table that maps keys to disk
blocks. FASTER achieves significantly better read performance at the price
of a higher memory footprint and a higher cost for range queries."

This module implements that design point so experiment E16 can compare it
against the LSM tree on exactly those three axes:

* **hybrid log**: an append-only record log whose tail region (the
  *mutable region*) lives in memory — records there are updated in place
  with no I/O at all, which is where FASTER's read-modify-write speed
  comes from; records past the tail are immutable and read-copy-updated;
* **hash index**: an in-memory table mapping every key to its newest
  record's log address (the memory-footprint price);
* **no order**: range queries must scan the whole log (the range-query
  price).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.merge_operator import MergeOperator
from ..errors import ConfigError
from ..storage.disk import SimulatedDisk

#: Per-record framing overhead (lengths, checksum) in the size model.
RECORD_OVERHEAD_BYTES = 16


@dataclass
class _Record:
    key: str
    value: str

    @property
    def size(self) -> int:
        return len(self.key) + len(self.value) + RECORD_OVERHEAD_BYTES


class FasterStore:
    """Log-structured hash store with an in-memory mutable tail region.

    Args:
        disk: Simulated device shared with whatever it is compared against.
        mutable_region_bytes: Size of the in-memory tail. Operations on
            records in this region are pure memory operations; appends are
            charged to the device only when records age out of the region
            (the hybrid-log flush), modeling FASTER's epoch-based tail.
        merge_operator: Optional operator for :meth:`rmw`.

    The public surface mirrors :class:`~repro.core.tree.LSMTree` where the
    semantics allow, so the benchmark harness can drive both.
    """

    def __init__(
        self,
        disk: Optional[SimulatedDisk] = None,
        mutable_region_bytes: int = 64 * 1024,
        merge_operator: Optional[MergeOperator] = None,
    ) -> None:
        if mutable_region_bytes < 1024:
            raise ConfigError("mutable_region_bytes must be at least 1 KiB")
        self.disk = disk or SimulatedDisk()
        self.mutable_region_bytes = mutable_region_bytes
        self.merge_operator = merge_operator
        #: key -> log address of the newest record.
        self._index: Dict[str, int] = {}
        self._records: Dict[int, _Record] = {}
        self._head = 0  # next append address
        self._stable_boundary = 0  # addresses below this are on disk
        self._pending_flush_bytes = 0
        self.user_bytes_written = 0
        self.in_place_updates = 0
        self.appends = 0

    # -- internals -------------------------------------------------------------

    def _mutable(self, address: int) -> bool:
        return address >= self._stable_boundary

    def _append(self, key: str, value: str) -> int:
        record = _Record(key, value)
        address = self._head
        self._records[address] = record
        self._head += record.size
        self.appends += 1
        self._age_out()
        return address

    def _age_out(self) -> None:
        """Advance the stable boundary so the mutable region stays bounded,
        charging sequential device writes for everything that ages out."""
        target = self._head - self.mutable_region_bytes
        while self._stable_boundary < target:
            record = self._records.get(self._stable_boundary)
            if record is None:
                # A hole from GC'd space; skip a byte (rare, cheap).
                self._stable_boundary += 1
                continue
            self._pending_flush_bytes += record.size
            self._stable_boundary += record.size
        page = self.disk.page_size
        while self._pending_flush_bytes >= page:
            self.disk.write(page, cause="faster_log")
            self._pending_flush_bytes -= page

    # -- external operations ------------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update. In-place when the record is still mutable."""
        self.user_bytes_written += len(key) + len(value)
        address = self._index.get(key)
        if address is not None and self._mutable(address):
            record = self._records[address]
            if len(value) <= len(record.value):
                record.value = value  # in-place, zero I/O
                self.in_place_updates += 1
                return
        self._index[key] = self._append(key, value)

    def get(self, key: str) -> Optional[str]:
        """Point lookup: one hash probe, at most one random read."""
        address = self._index.get(key)
        if address is None:
            return None
        record = self._records[address]
        if not self._mutable(address):
            self.disk.read(record.size, cause="faster_read")
        return record.value

    def rmw(self, key: str, operand: str) -> None:
        """Read-modify-write: FASTER's headline operation.

        Mutable-region records update in place with no I/O; stable records
        cost one read plus an append.
        """
        if self.merge_operator is None:
            raise ConfigError("rmw requires a merge_operator")
        self.user_bytes_written += len(key) + len(operand)
        address = self._index.get(key)
        if address is None:
            merged = self.merge_operator.full_merge(key, None, [operand])
            self._index[key] = self._append(key, merged)
            return
        record = self._records[address]
        if self._mutable(address):
            merged = self.merge_operator.full_merge(
                key, record.value, [operand]
            )
            if len(merged) <= len(record.value):
                record.value = merged
                self.in_place_updates += 1
                return
            self._index[key] = self._append(key, merged)
            return
        self.disk.read(record.size, cause="faster_read")
        merged = self.merge_operator.full_merge(key, record.value, [operand])
        self._index[key] = self._append(key, merged)

    def delete(self, key: str) -> None:
        """Remove the key from the index (space is reclaimed by log GC)."""
        self._index.pop(key, None)

    def scan(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Range query: the log is unordered, so scan the *entire* live
        index and read every stable record — FASTER's documented weakness.
        """
        results: List[Tuple[str, str]] = []
        stable_bytes = 0
        for key, address in self._index.items():
            record = self._records[address]
            if not self._mutable(address):
                stable_bytes += record.size
            if lo <= key < hi:
                results.append((key, record.value))
        if stable_bytes:
            self.disk.read(stable_bytes, cause="faster_scan")
        results.sort()
        return results

    # -- metrics -------------------------------------------------------------------

    def write_amplification(self) -> float:
        """Device bytes written per user byte."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.disk.counters.bytes_written / self.user_bytes_written

    def memory_footprint_bits(self) -> int:
        """Index plus mutable region: FASTER's memory price.

        Charged as 8 bytes of address plus the key bytes per index slot,
        plus every record still in the mutable region.
        """
        index_bits = sum(8 * (len(key) + 8) for key in self._index)
        mutable_bits = sum(
            8 * record.size
            for address, record in self._records.items()
            if self._mutable(address)
        )
        return index_bits + mutable_bits

    def live_count(self) -> int:
        """Number of live keys."""
        return len(self._index)
