"""Sharded engine: independent LSM trees committing in parallel (§2.2.2)."""

from .store import ShardedStore, hash_shard_index

__all__ = ["ShardedStore", "hash_shard_index"]
