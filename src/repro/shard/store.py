"""Sharded LSM engine: N independent trees committing in parallel.

The tutorial's partitioning discussion (§2.2.2) — realized by PebblesDB's
guards and Nova-LSM's shard-per-component design — observes that splitting
the key space into independent trees makes each tree shallower *and* makes
the trees independent failure and concurrency domains. The
:class:`~repro.partition.PartitionedStore` exploits the first property on
one simulated device; :class:`ShardedStore` exploits the second: every
shard owns its *own* write-ahead log, write mutex, simulated device, and
(in background mode) background flush/compaction coordinator, so commits,
flushes, and compactions on different shards proceed genuinely in
parallel. This is the engine the serving layer's per-shard group commit
(:class:`~repro.server.KVServer`) fans out over.

Routing is pluggable:

* ``"hash"`` (default) — ``crc32(key) % num_shards``. Spreads any
  workload evenly, including sequential writers; scans must scatter to
  every shard and k-way merge.
* ``"range"`` — sorted split keys (reuse
  :func:`repro.partition.range_boundaries` to derive them). Keys stay
  clustered, so scans touch only the shards they overlap — range routing
  beats hash whenever scans dominate and the key distribution is known.

Atomicity contract: :meth:`ShardedStore.write_batch` validates the whole
batch up front, then splits it by shard — and is atomic **store-wide**.
A batch whose keys all route to one shard takes the plain fast path (one
write-mutex acquisition, one WAL sync, no coordinator). A batch spanning
shards commits through two-phase commit: every touched shard durably
journals a PREPARE record for its sub-batch, the store appends one
COMMIT decision to its :class:`~repro.core.wal.TxnDecisionLog`
(``txn.log``, beside ``shards.json``), and only then do the shards apply
their sub-batches. A crash anywhere in that window resolves
deterministically on :meth:`recover`: a durable COMMIT decision rolls
every prepared sub-batch forward; no (or a torn) decision rolls them all
back — never half a batch. :meth:`snapshot` serializes against the
coordinator, so consistent multi-shard reads (``get``/``scan`` with
``at=``) see whole batches or nothing.

Failure isolation (degraded mode): shards are independent failure domains,
and the store treats them that way. When a shard's background workers die
(:class:`~repro.errors.BackgroundError`), the shard is *quarantined* — a
per-shard :class:`HealthState` flips to ``"quarantined"``, operations
routed to it raise :class:`~repro.errors.ShardUnavailableError`, and the
other N−1 shards keep serving reads and writes. The serving layer maps the
error to a retryable ``ERR UNAVAILABLE <shard>`` reply and exposes the
rollup through its ``HEALTH`` command. Before this machinery, one dead
worker bricked the entire store.
"""

from __future__ import annotations

import bisect
import json
import os
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from heapq import merge as heap_merge
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..api import PartialScanResult, Snapshot, SnapshotLike
from ..core.config import LSMConfig
from ..core.merge_operator import MergeOperator
from ..core.stats import TreeStats
from ..core.tree import LSMTree
from ..core.wal import TXN_ABORT, TXN_COMMIT, TXN_LOG_NAME, TxnDecisionLog
from ..errors import (
    BackgroundError,
    ClosedError,
    ConfigError,
    CorruptionError,
    ShardUnavailableError,
    TxnConflictError,
)
from ..faults.registry import fault_point

#: One batched write: ("put" | "delete", key, value-or-None).
BatchOp = Tuple[str, str, Optional[str]]

#: Name of the routing manifest written next to the shard WAL directories.
MANIFEST_NAME = "shards.json"

_ROUTINGS = ("hash", "range")

#: Backpressure states ordered from healthy to write-stopped.
_STATE_SEVERITY = {"ok": 0, "slowdown": 1, "stop": 2}

HEALTHY = "healthy"
QUARANTINED = "quarantined"

_T = TypeVar("_T")


@dataclass
class HealthState:
    """Failure-domain status of one shard.

    ``since_s`` is a monotonic timestamp (``time.monotonic()``) of the
    quarantine moment, letting operators and the availability benchmark
    compute time-to-detection.
    """

    state: str = HEALTHY
    reason: Optional[str] = None
    since_s: float = field(default_factory=time.monotonic)

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY


def hash_shard_index(key: str, num_shards: int) -> int:
    """Stable hash routing: ``crc32(key) % num_shards``.

    Deliberately not Python's builtin ``hash`` — that is salted per
    process (``PYTHONHASHSEED``), which would route the same key to
    different shards across restarts and break WAL recovery.
    """
    return zlib.crc32(key.encode("utf-8")) % num_shards


class ShardedStore:
    """N independent :class:`~repro.core.tree.LSMTree` shards, one store.

    Args:
        num_shards: Shard count (>= 1). Derived from ``boundaries`` when
            those are given instead.
        config: Per-shard configuration (shared instance). With
            ``background_mode=True`` every shard runs its own flush and
            compaction workers.
        routing: ``"hash"`` (default) or ``"range"``.
        boundaries: Sorted split keys for range routing
            (``len(boundaries) + 1`` shards); reuse
            :func:`repro.partition.range_boundaries` to derive them.
        wal_dir: Directory for durable WALs. Each shard journals into its
            own ``shard-NN/`` subdirectory, and a ``shards.json`` manifest
            records the routing so :meth:`recover` replays each shard's
            log with the same key placement.
        merge_operator: Passed through to every shard.

    Example:
        >>> store = ShardedStore(4)
        >>> store.put("user42", "hello")
        >>> store.get("user42")
        'hello'
        >>> store.num_shards
        4
    """

    def __init__(
        self,
        num_shards: Optional[int] = None,
        config: Optional[LSMConfig] = None,
        *,
        routing: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        wal_dir: Optional[str] = None,
        merge_operator: Optional[MergeOperator] = None,
        _recover: bool = False,
        _committed_txns: Optional[frozenset] = None,
    ) -> None:
        if routing not in _ROUTINGS:
            raise ConfigError(f"routing must be one of {_ROUTINGS}")
        if boundaries is not None:
            routing = "range"
            ordered = list(boundaries)
            if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
                raise ValueError("boundaries must be sorted and distinct")
            derived = len(ordered) + 1
            if num_shards is not None and num_shards != derived:
                raise ValueError(
                    f"num_shards={num_shards} contradicts "
                    f"{len(ordered)} boundaries ({derived} shards)"
                )
            num_shards = derived
            self.boundaries: List[str] = ordered
        elif routing == "range":
            raise ConfigError("range routing needs explicit boundaries")
        else:
            self.boundaries = []
        if num_shards is None or num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.routing = routing
        self._wal_dir = wal_dir
        self._closed = False
        self._health = [HealthState() for _ in range(num_shards)]
        self._health_lock = threading.Lock()
        shard_dirs: List[Optional[str]] = [None] * num_shards
        if wal_dir is not None:
            shard_dirs = [
                os.path.join(wal_dir, f"shard-{index:02d}")
                for index in range(num_shards)
            ]
            for path in shard_dirs:
                os.makedirs(path, exist_ok=True)
            self._write_manifest(wal_dir, num_shards)
        if _recover:
            self.shards: List[LSMTree] = [
                LSMTree.recover(
                    config,
                    path,
                    merge_operator=merge_operator,
                    committed_txns=_committed_txns,
                )
                for path in shard_dirs  # type: ignore[union-attr]
            ]
        else:
            self.shards = [
                LSMTree(
                    config, wal_dir=path, merge_operator=merge_operator
                )
                for path in shard_dirs
            ]
        #: Serializes the two-phase-commit coordinator and snapshot
        #: capture: one multi-shard transaction at a time, and a snapshot
        #: can never land between a transaction's sub-batches.
        self._txn_lock = threading.Lock()
        #: Durable coordinator decision log; ``None`` for in-memory
        #: stores, which have no crash-recovery story to coordinate.
        self._txn_log: Optional[TxnDecisionLog] = None
        if wal_dir is not None:
            self._txn_log = TxnDecisionLog(
                os.path.join(wal_dir, TXN_LOG_NAME),
                fsync=config.wal_fsync if config is not None else False,
            )
        #: Commits sub-batches (and hash-routed scans) concurrently; one
        #: worker per shard, so every shard can have a commit in flight.
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard"
        )

    def _write_manifest(self, wal_dir: str, num_shards: int) -> None:
        manifest = {
            "num_shards": num_shards,
            "routing": self.routing,
            "boundaries": self.boundaries,
        }
        path = os.path.join(wal_dir, MANIFEST_NAME)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                try:
                    existing = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise CorruptionError(
                        "shard manifest is not valid JSON",
                        path=path,
                        byte_offset=exc.pos,
                    ) from exc
            if existing != manifest:
                raise ConfigError(
                    f"{path} records a different sharding "
                    f"({existing}); recover with ShardedStore.recover or "
                    "use a fresh directory"
                )
            return
        blob = json.dumps(manifest)
        temporary = path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(blob)
        fault_point(
            "shard.manifest.tmp", path=temporary, tail_bytes=len(blob)
        )
        os.replace(temporary, path)  # atomic: readers never see a torn file
        fault_point("shard.manifest.done", path=path)

    # -- routing -------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of independent trees."""
        return len(self.shards)

    def shard_index(self, key: str) -> int:
        """Index of the shard owning ``key`` (stable across restarts)."""
        if self.routing == "hash":
            return hash_shard_index(key, len(self.shards))
        return bisect.bisect_right(self.boundaries, key)

    def shard_for(self, key: str) -> LSMTree:
        """The tree owning ``key``."""
        return self.shards[self.shard_index(key)]

    # -- failure isolation ----------------------------------------------------

    def _quarantine(self, index: int, cause: BaseException) -> None:
        with self._health_lock:
            health = self._health[index]
            if health.healthy:
                health.state = QUARANTINED
                health.reason = str(cause) or type(cause).__name__
                health.since_s = time.monotonic()

    def _check_available(self, index: int) -> None:
        health = self._health[index]
        if not health.healthy:
            raise ShardUnavailableError(
                index, health.reason or "quarantined"
            )

    def _shard_op(self, index: int, op: Callable[[], _T]) -> _T:
        """Run one shard-routed operation with quarantine semantics.

        A shard whose background workers have died is unavailable for
        reads *and* writes: reads would serve from a tree whose
        maintenance stopped (unbounded staleness of structure, stalled
        flushes), so the degraded contract is explicit unavailability
        rather than silent best-effort.
        """
        self._check_available(index)
        shard = self.shards[index]
        error = shard.background_error()
        if error is not None:
            self._quarantine(index, error)
            raise ShardUnavailableError(
                index, f"background workers died: {error}"
            )
        try:
            return op()
        except BackgroundError as exc:
            self._quarantine(index, exc)
            raise ShardUnavailableError(index, str(exc)) from exc

    def check_health(self) -> Dict[str, object]:
        """Poll every shard for dead workers; return the health rollup.

        Quarantines any shard whose background pool reports an error, so
        a failure is detected even if no operation has routed to that
        shard since it died. ``state`` is ``"healthy"`` (all shards up),
        ``"degraded"`` (some quarantined), or ``"failed"`` (all
        quarantined).
        """
        self._check_open()
        for index, shard in enumerate(self.shards):
            if self._health[index].healthy:
                error = shard.background_error()
                if error is not None:
                    self._quarantine(index, error)
        quarantined = [
            index
            for index, health in enumerate(self._health)
            if not health.healthy
        ]
        if not quarantined:
            state = "healthy"
        elif len(quarantined) == len(self.shards):
            state = "failed"
        else:
            state = "degraded"
        return {
            "state": state,
            "num_shards": len(self.shards),
            "quarantined": quarantined,
            "shards": [
                {
                    "shard": index,
                    "state": health.state,
                    "reason": health.reason,
                }
                for index, health in enumerate(self._health)
            ],
        }

    def quarantined_shards(self) -> List[int]:
        """Indices of currently quarantined shards."""
        return [
            index
            for index, health in enumerate(self._health)
            if not health.healthy
        ]

    # -- external operations -------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` in its owning shard."""
        self._check_open()
        index = self.shard_index(key)
        self._shard_op(index, lambda: self.shards[index].put(key, value))

    def get(
        self, key: str, at: Optional[SnapshotLike] = None
    ) -> Optional[str]:
        """Point lookup in the owning shard only; ``at=`` reads as of a
        store-wide snapshot (the shard answers at its pinned seqno)."""
        self._check_open()
        index = self.shard_index(key)
        if at is None:
            return self._shard_op(
                index, lambda: self.shards[index].get(key)
            )
        seq = Snapshot.coerce(at).seqno_for(index)
        return self._shard_op(
            index, lambda: self.shards[index].get(key, at=seq)
        )

    def snapshot(self) -> Snapshot:
        """Capture a store-wide consistent read point.

        Pins every healthy shard's tip seqno under the transaction lock,
        so the capture can never land between a cross-shard batch's
        sub-batches: a multi-shard read at the returned handle sees every
        atomic batch entirely or not at all. Quarantined shards are not
        covered — reading them at this snapshot raises
        :class:`~repro.errors.SnapshotExpiredError`. Release the handle
        (``close()``/``with``) so the shards can stop pinning overwritten
        versions.
        """
        self._check_open()
        with self._txn_lock:
            pins: Dict[int, int] = {}
            for index, shard in enumerate(self.shards):
                if self._health[index].healthy:
                    pins[index] = shard.snapshot_pin()

        def release() -> None:
            for index, seq in pins.items():
                try:
                    self.shards[index].snapshot_release(seq)
                except Exception:
                    pass  # a dying shard's pins die with it

        return Snapshot(pins, release=release)

    def delete(self, key: str) -> None:
        """Logical delete in the owning shard."""
        self._check_open()
        index = self.shard_index(key)
        self._shard_op(index, lambda: self.shards[index].delete(key))

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Apply a batch atomically, across shards if it spans them.

        The whole batch is validated before anything is submitted, so a
        malformed op raises ``ValueError`` with nothing applied — and a
        batch touching a *known-quarantined* shard raises
        :class:`~repro.errors.ShardUnavailableError` up front, also with
        nothing applied.

        A batch whose keys all route to **one shard** commits exactly as
        before: one write-mutex acquisition, one WAL sync, no coordinator
        involvement — the hot path the perf gate pins.

        A batch spanning **several shards** goes through two-phase
        commit (:meth:`_commit_cross_shard`): all-or-nothing even across
        a crash. A failure before the commit decision rolls every
        prepared sub-batch back (a coordinator-log failure surfaces as
        the retryable :class:`~repro.errors.TxnConflictError`); once the
        decision is durable the batch is committed — a crash after it
        rolls forward on :meth:`recover`.
        """
        self._check_open()
        if not ops:
            return
        for op, key, value in ops:
            if not key:
                raise ValueError("keys must be non-empty")
            if op == "put":
                if value is None:
                    raise ValueError("put ops need a value")
            elif op != "delete":
                raise ValueError(f"unknown batch op {op!r}")
        by_shard: Dict[int, List[BatchOp]] = {}
        for batch_op in ops:
            by_shard.setdefault(
                self.shard_index(batch_op[1]), []
            ).append(batch_op)
        for index in by_shard:
            self._check_available(index)
        if len(by_shard) == 1:
            index, sub_ops = next(iter(by_shard.items()))
            self._commit_sub_batch(index, sub_ops)
            return
        self._commit_cross_shard(by_shard)

    def _commit_sub_batch(self, index: int, sub_ops: List[BatchOp]) -> None:
        fault_point("shard.commit", scope=f"shard-{index:02d}")
        self._shard_op(
            index, lambda: self.shards[index].write_batch(sub_ops)
        )

    def _commit_cross_shard(
        self, by_shard: Dict[int, List[BatchOp]]
    ) -> None:
        """Two-phase commit of a batch that spans shards.

        Under the transaction lock (one coordinator at a time, and
        :meth:`snapshot` can never interleave): every touched shard
        durably journals a PREPARE record for its sub-batch — keeping its
        write mutex held so nothing can slip between prepare and apply —
        then one COMMIT decision is appended to the coordinator log, then
        every shard applies. Any prepare failure aborts all prepared
        shards and re-raises the original error (nothing applied); a
        decision-write failure likewise rolls back and raises
        :class:`~repro.errors.TxnConflictError`. A *crash* anywhere in
        the window resolves on recovery by the decision log alone.

        The whole protocol runs inline on the calling thread: the shard
        write mutexes are reentrant locks, so prepare and settle must be
        thread-affine. (Serialized prepares cost the multi-shard case its
        sub-batch parallelism; that is the price of atomicity, and the
        single-shard fast path is untouched.)
        """
        if self._txn_log is None:
            # In-memory store: no crash to defend against, but snapshots
            # still must not observe half a batch — apply sequentially
            # under the lock snapshot capture serializes with.
            with self._txn_lock:
                for index in sorted(by_shard):
                    self._commit_sub_batch(index, by_shard[index])
            return
        with self._txn_lock:
            txn_id = self._txn_log.next_txn_id()
            prepared: List[int] = []
            try:
                for index in sorted(by_shard):
                    fault_point("txn.prepare", scope=f"shard-{index:02d}")
                    self._shard_op(
                        index,
                        lambda index=index: self.shards[index].txn_prepare(
                            txn_id, by_shard[index]
                        ),
                    )
                    prepared.append(index)
            except Exception:
                self._rollback_prepared(txn_id, prepared)
                raise
            try:
                self._txn_log.append(txn_id, TXN_COMMIT)
            except Exception as exc:
                self._rollback_prepared(txn_id, prepared)
                try:
                    self._txn_log.append(txn_id, TXN_ABORT)
                except Exception:
                    pass  # absent decision already means abort on recovery
                raise TxnConflictError(
                    "cross-shard batch rolled back: the coordinator "
                    "decision could not be made durable"
                ) from exc
            failure: Optional[BaseException] = None
            for index in prepared:
                fault_point("txn.commit", scope=f"shard-{index:02d}")
                try:
                    self._shard_op(
                        index,
                        lambda index=index: self.shards[
                            index
                        ].txn_commit(txn_id),
                    )
                except Exception as exc:
                    # The decision is durable: the transaction IS
                    # committed. Keep applying the other shards; surface
                    # the first failure (e.g. a replication ack) after.
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure

    def _rollback_prepared(self, txn_id: int, prepared: List[int]) -> None:
        for index in reversed(prepared):
            try:
                self.shards[index].txn_abort(txn_id)
            except Exception:
                pass  # recovery rolls an undecided prepare back anyway

    def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        *,
        at: Optional[SnapshotLike] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Scatter-gather range lookup, k-way merged across shards.

        Range routing touches only the shards overlapping ``[lo, hi)``, in
        key order, stopping as soon as ``limit`` pairs are collected. Hash
        routing must scatter to every shard (any shard may own any key in
        the range) — the per-shard scans run concurrently on the store's
        executor, each individually capped at ``limit``, and the sorted
        partial results are k-way merged (shards own disjoint keys, so the
        merge never sees duplicates).

        ``at=`` reads every shard as of its seqno pinned in the snapshot,
        so a multi-shard scan sees each cross-shard batch entirely or not
        at all — the snapshot was captured under the same lock the
        two-phase-commit coordinator holds.

        Quarantined shards: by default (``allow_partial=False``) any
        quarantined shard the scan would touch makes it fail with
        :class:`~repro.errors.ShardUnavailableError` — a partial scan
        *silently* missing one shard's keys would be corruption, not
        degradation. With ``allow_partial=True`` the dead shards are
        skipped instead and the result is a :class:`PartialScanResult`
        whose ``partial`` flag and ``skipped_shards`` list say exactly
        what is missing — explicit degradation the caller opted into.
        """
        self._check_open()
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None)")
        snap = None if at is None else Snapshot.coerce(at)
        if lo >= hi or limit == 0:
            return PartialScanResult([], []) if allow_partial else []
        if self.routing == "range":
            first = bisect.bisect_right(self.boundaries, lo)
            # hi is exclusive: bisect_left keeps a scan ending exactly on
            # a boundary from involving the next shard, which owns only
            # keys >= hi and so can never contribute (and must not fail
            # or degrade the scan when quarantined).
            last = bisect.bisect_left(self.boundaries, hi)
            involved = list(
                range(first, min(last, len(self.shards) - 1) + 1)
            )
        else:
            involved = list(range(len(self.shards)))
        available: List[int] = []
        skipped: List[int] = []
        for index in involved:
            try:
                self._check_available(index)
            except ShardUnavailableError:
                if not allow_partial:
                    raise
                skipped.append(index)
                continue
            available.append(index)

        def scan_shard(
            index: int, remaining: Optional[int]
        ) -> List[Tuple[str, str]]:
            try:
                if snap is None:
                    return self._shard_op(
                        index,
                        lambda: self.shards[index].scan(lo, hi, remaining),
                    )
                seq = snap.seqno_for(index)
                return self._shard_op(
                    index,
                    lambda: self.shards[index].scan(
                        lo, hi, remaining, at=seq
                    ),
                )
            except ShardUnavailableError:
                # Quarantined mid-scan (after the up-front check).
                if not allow_partial:
                    raise
                skipped.append(index)
                return []

        if self.routing == "range":
            merged: List[Tuple[str, str]] = []
            for index in available:
                remaining = None if limit is None else limit - len(merged)
                if remaining == 0:
                    break
                merged.extend(scan_shard(index, remaining))
        elif len(available) <= 1:
            merged = scan_shard(available[0], limit) if available else []
        else:
            partials = list(
                self._executor.map(
                    lambda index: scan_shard(index, limit), available
                )
            )
            merged = list(heap_merge(*partials))
            if limit is not None:
                merged = merged[:limit]
        if allow_partial:
            return PartialScanResult(merged, skipped)
        return merged

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Force every *healthy* shard's active buffer to disk.

        Quarantined shards are skipped: their workers are gone, so a
        flush would only re-raise the failure the quarantine already
        recorded.
        """
        self._check_open()
        self.check_health()
        for index, shard in enumerate(self.shards):
            if self._health[index].healthy:
                self._shard_op(index, shard.flush)

    def compact_all(self) -> None:
        """Major compaction on every healthy shard."""
        self._check_open()
        self.check_health()
        for index, shard in enumerate(self.shards):
            if self._health[index].healthy:
                self._shard_op(index, shard.compact_all)

    def close(self) -> None:
        """Close every shard and release the commit executor. Idempotent.

        Shards close concurrently on the commit executor: each close
        drains that shard's rotated buffers and pending compactions
        (:meth:`LSMTree.close`), so the drains overlap exactly like the
        background work itself did. Shard close errors are collected so
        every shard still gets closed. A
        :class:`~repro.errors.BackgroundError` from an
        *already-quarantined* shard is swallowed — the failure was
        surfaced when the shard was quarantined, and degraded-mode
        shutdown must succeed — while an unexpected first-time failure is
        re-raised.
        """
        if self._closed:
            return
        for index, shard in enumerate(self.shards):
            if self._health[index].healthy:
                error = shard.background_error()
                if error is not None:
                    self._quarantine(index, error)
        self._closed = True
        failure: Optional[BaseException] = None
        futures = [
            (index, self._executor.submit(shard.close))
            for index, shard in enumerate(self.shards)
        ]
        for index, future in futures:
            try:
                future.result()
            except BackgroundError as exc:
                # Not quarantined before close: a genuinely new failure
                # the caller has never seen. Surface it.
                if self._health[index].healthy and failure is None:
                    failure = exc
            except BaseException as exc:
                if failure is None:
                    failure = exc
        self._executor.shutdown(wait=True)
        if self._txn_log is not None:
            self._txn_log.close()
        if failure is not None:
            raise failure

    def kill(self) -> None:
        """Abandon every shard as a process crash would. Idempotent.

        The sharded counterpart of :meth:`LSMTree.kill`: no drains, no
        flushes, no error propagation — used by the crash-consistency
        harness to model whole-process death.
        """
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.kill()
        if self._txn_log is not None:
            self._txn_log.close()
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("store is closed")

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        config: Optional[LSMConfig],
        wal_dir: str,
        *,
        merge_operator: Optional[MergeOperator] = None,
    ) -> "ShardedStore":
        """Rebuild every shard from its own WAL after a crash.

        The ``shards.json`` manifest fixes shard count and routing, so
        keys re-route exactly as they did before the crash; each shard
        then replays only the segments in its own ``shard-NN/`` directory
        (:meth:`LSMTree.recover`), preserving its independent sequence
        numbers. Shards recover independently — one shard's surviving
        writes are never visible to, or blocked by, another's replay.

        The coordinator decision log is read *first*: every PREPARE
        record found during a shard's replay rolls forward exactly when
        ``txn.log`` holds a durable COMMIT decision for its transaction,
        and rolls back otherwise (presumed abort) — so a crash mid
        two-phase commit never resurfaces half a batch.
        """
        path = os.path.join(wal_dir, MANIFEST_NAME)
        if not os.path.exists(path):
            raise ConfigError(
                f"no {MANIFEST_NAME} in {wal_dir}; not a sharded WAL "
                "directory"
            )
        with open(path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CorruptionError(
                    "shard manifest is not valid JSON",
                    path=path,
                    byte_offset=exc.pos,
                ) from exc
        decisions = TxnDecisionLog.replay(
            os.path.join(wal_dir, TXN_LOG_NAME)
        )
        committed = frozenset(
            txn for txn, verdict in decisions.items()
            if verdict == TXN_COMMIT
        )
        return cls(
            manifest["num_shards"],
            config,
            routing=manifest["routing"],
            boundaries=manifest["boundaries"] or None,
            wal_dir=wal_dir,
            merge_operator=merge_operator,
            _recover=True,
            _committed_txns=committed,
        )

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> TreeStats:
        """Rollup of every shard's counters (:meth:`TreeStats.merged`)."""
        return TreeStats.merged([shard.stats for shard in self.shards])

    def backpressure(self) -> Dict[str, object]:
        """Aggregate admission snapshot: the *worst healthy* shard governs.

        ``state`` is the most severe of the healthy shard states (``stop``
        beats ``slowdown`` beats ``ok``) — conservative on purpose, since
        a serving layer that admits a write cannot know which shard it
        will route to until it parses the key. Quarantined shards are
        excluded from the backpressure verdict (their unavailability is
        reported per-operation, not as store-wide pushback) and listed
        under ``quarantined_shards``; with *no* healthy shard left the
        state degrades to ``"stop"``. The raw quantities aggregate (max
        Level-0 depth, summed immutable buffers) and ``shards`` carries
        the full per-shard breakdown for operators.
        """
        per_shard = []
        for index, shard in enumerate(self.shards):
            snapshot = shard.backpressure()
            snapshot["healthy"] = self._health[index].healthy
            per_shard.append(snapshot)
        healthy = [s for s in per_shard if s["healthy"]]
        if healthy:
            worst = max(
                healthy, key=lambda s: _STATE_SEVERITY.get(str(s["state"]), 0)
            )
            state = worst["state"]
        else:
            worst = per_shard[0]
            state = "stop"
        return {
            "state": state,
            "level0_runs": max(int(s["level0_runs"]) for s in per_shard),
            "immutable_buffers": sum(
                int(s["immutable_buffers"]) for s in per_shard
            ),
            "slowdown_trigger": worst["slowdown_trigger"],
            "stop_trigger": worst["stop_trigger"],
            "quarantined_shards": self.quarantined_shards(),
            "shards": [
                {"shard": index, **snapshot}
                for index, snapshot in enumerate(per_shard)
            ],
        }

    def shard_summary(self) -> List[Dict[str, object]]:
        """Per-shard breakdown served through the server's ``INFO``."""
        return [
            {
                "shard": index,
                "routing": self.routing,
                "levels": len(shard.levels),
                "disk_bytes": shard.total_disk_bytes(),
                "seqno": shard.seqno,
                "puts": shard.stats.puts,
                "deletes": shard.stats.deletes,
                "flushes": shard.stats.flushes,
                "compactions": shard.stats.compactions,
                "backpressure": shard.backpressure()["state"],
                "health": self._health[index].state,
                "health_reason": self._health[index].reason,
            }
            for index, shard in enumerate(self.shards)
        ]

    def total_disk_bytes(self) -> int:
        """Payload bytes across all shards."""
        return sum(shard.total_disk_bytes() for shard in self.shards)

    def max_depth(self) -> int:
        """Deepest shard's level count."""
        return max((len(shard.levels) for shard in self.shards), default=0)

    def write_amplification(self) -> float:
        """Aggregate device bytes written per user byte, across shards."""
        user_bytes = sum(
            shard.stats.user_bytes_written for shard in self.shards
        )
        if user_bytes == 0:
            return 0.0
        device_bytes = sum(
            shard.disk.counters.bytes_written for shard in self.shards
        )
        return device_bytes / user_bytes

    def memory_footprint_bits(self) -> int:
        """Aggregate buffer + filter + fence memory across shards."""
        return sum(shard.memory_footprint_bits() for shard in self.shards)
