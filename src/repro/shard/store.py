"""Sharded LSM engine: N independent trees committing in parallel.

The tutorial's partitioning discussion (§2.2.2) — realized by PebblesDB's
guards and Nova-LSM's shard-per-component design — observes that splitting
the key space into independent trees makes each tree shallower *and* makes
the trees independent failure and concurrency domains. The
:class:`~repro.partition.PartitionedStore` exploits the first property on
one simulated device; :class:`ShardedStore` exploits the second: every
shard owns its *own* write-ahead log, write mutex, simulated device, and
(in background mode) background flush/compaction coordinator, so commits,
flushes, and compactions on different shards proceed genuinely in
parallel. This is the engine the serving layer's per-shard group commit
(:class:`~repro.server.KVServer`) fans out over.

Routing is pluggable:

* ``"hash"`` (default) — ``crc32(key) % num_shards``. Spreads any
  workload evenly, including sequential writers; scans must scatter to
  every shard and k-way merge.
* ``"range"`` — sorted split keys (reuse
  :func:`repro.partition.range_boundaries` to derive them). Keys stay
  clustered, so scans touch only the shards they overlap — range routing
  beats hash whenever scans dominate and the key distribution is known.

Atomicity contract: :meth:`ShardedStore.write_batch` validates the whole
batch up front, then splits it by shard and commits the sub-batches
concurrently. Each *sub-batch* is atomic and durable as a unit (one write
mutex acquisition, one WAL sync on its shard), but the batch as a whole is
not: a crash can persist shard A's sub-batch and lose shard B's. Callers
needing cross-key atomicity must route those keys to one shard (range
routing makes that controllable) or layer a transaction log above.
"""

from __future__ import annotations

import bisect
import json
import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from heapq import merge as heap_merge
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import LSMConfig
from ..core.merge_operator import MergeOperator
from ..core.stats import TreeStats
from ..core.tree import LSMTree
from ..errors import ClosedError, ConfigError

#: One batched write: ("put" | "delete", key, value-or-None).
BatchOp = Tuple[str, str, Optional[str]]

#: Name of the routing manifest written next to the shard WAL directories.
MANIFEST_NAME = "shards.json"

_ROUTINGS = ("hash", "range")

#: Backpressure states ordered from healthy to write-stopped.
_STATE_SEVERITY = {"ok": 0, "slowdown": 1, "stop": 2}


def hash_shard_index(key: str, num_shards: int) -> int:
    """Stable hash routing: ``crc32(key) % num_shards``.

    Deliberately not Python's builtin ``hash`` — that is salted per
    process (``PYTHONHASHSEED``), which would route the same key to
    different shards across restarts and break WAL recovery.
    """
    return zlib.crc32(key.encode("utf-8")) % num_shards


class ShardedStore:
    """N independent :class:`~repro.core.tree.LSMTree` shards, one store.

    Args:
        num_shards: Shard count (>= 1). Derived from ``boundaries`` when
            those are given instead.
        config: Per-shard configuration (shared instance). With
            ``background_mode=True`` every shard runs its own flush and
            compaction workers.
        routing: ``"hash"`` (default) or ``"range"``.
        boundaries: Sorted split keys for range routing
            (``len(boundaries) + 1`` shards); reuse
            :func:`repro.partition.range_boundaries` to derive them.
        wal_dir: Directory for durable WALs. Each shard journals into its
            own ``shard-NN/`` subdirectory, and a ``shards.json`` manifest
            records the routing so :meth:`recover` replays each shard's
            log with the same key placement.
        merge_operator: Passed through to every shard.

    Example:
        >>> store = ShardedStore(4)
        >>> store.put("user42", "hello")
        >>> store.get("user42")
        'hello'
        >>> store.num_shards
        4
    """

    def __init__(
        self,
        num_shards: Optional[int] = None,
        config: Optional[LSMConfig] = None,
        *,
        routing: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        wal_dir: Optional[str] = None,
        merge_operator: Optional[MergeOperator] = None,
        _recover: bool = False,
    ) -> None:
        if routing not in _ROUTINGS:
            raise ConfigError(f"routing must be one of {_ROUTINGS}")
        if boundaries is not None:
            routing = "range"
            ordered = list(boundaries)
            if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
                raise ValueError("boundaries must be sorted and distinct")
            derived = len(ordered) + 1
            if num_shards is not None and num_shards != derived:
                raise ValueError(
                    f"num_shards={num_shards} contradicts "
                    f"{len(ordered)} boundaries ({derived} shards)"
                )
            num_shards = derived
            self.boundaries: List[str] = ordered
        elif routing == "range":
            raise ConfigError("range routing needs explicit boundaries")
        else:
            self.boundaries = []
        if num_shards is None or num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.routing = routing
        self._wal_dir = wal_dir
        self._closed = False
        shard_dirs: List[Optional[str]] = [None] * num_shards
        if wal_dir is not None:
            shard_dirs = [
                os.path.join(wal_dir, f"shard-{index:02d}")
                for index in range(num_shards)
            ]
            for path in shard_dirs:
                os.makedirs(path, exist_ok=True)
            self._write_manifest(wal_dir, num_shards)
        if _recover:
            self.shards: List[LSMTree] = [
                LSMTree.recover(
                    config, path, merge_operator=merge_operator
                )
                for path in shard_dirs  # type: ignore[union-attr]
            ]
        else:
            self.shards = [
                LSMTree(
                    config, wal_dir=path, merge_operator=merge_operator
                )
                for path in shard_dirs
            ]
        #: Commits sub-batches (and hash-routed scans) concurrently; one
        #: worker per shard, so every shard can have a commit in flight.
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard"
        )

    def _write_manifest(self, wal_dir: str, num_shards: int) -> None:
        manifest = {
            "num_shards": num_shards,
            "routing": self.routing,
            "boundaries": self.boundaries,
        }
        path = os.path.join(wal_dir, MANIFEST_NAME)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing != manifest:
                raise ConfigError(
                    f"{path} records a different sharding "
                    f"({existing}); recover with ShardedStore.recover or "
                    "use a fresh directory"
                )
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)

    # -- routing -------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of independent trees."""
        return len(self.shards)

    def shard_index(self, key: str) -> int:
        """Index of the shard owning ``key`` (stable across restarts)."""
        if self.routing == "hash":
            return hash_shard_index(key, len(self.shards))
        return bisect.bisect_right(self.boundaries, key)

    def shard_for(self, key: str) -> LSMTree:
        """The tree owning ``key``."""
        return self.shards[self.shard_index(key)]

    # -- external operations -------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` in its owning shard."""
        self.shard_for(key).put(key, value)

    def get(self, key: str) -> Optional[str]:
        """Point lookup in the owning shard only."""
        return self.shard_for(key).get(key)

    def delete(self, key: str) -> None:
        """Logical delete in the owning shard."""
        self.shard_for(key).delete(key)

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Split a batch by shard; commit the sub-batches concurrently.

        The whole batch is validated before any sub-batch is submitted, so
        a malformed op raises ``ValueError`` with nothing applied. Each
        sub-batch then commits on its own shard — one write-mutex
        acquisition and one WAL sync per *shard touched*, all in flight at
        once on the store's executor. **Atomicity is per shard**: if one
        shard's commit fails (or the process dies mid-flight), sub-batches
        on other shards may already be durable. The first shard failure is
        re-raised after every sub-batch has settled.
        """
        self._check_open()
        if not ops:
            return
        for op, key, value in ops:
            if not key:
                raise ValueError("keys must be non-empty")
            if op == "put":
                if value is None:
                    raise ValueError("put ops need a value")
            elif op != "delete":
                raise ValueError(f"unknown batch op {op!r}")
        by_shard: Dict[int, List[BatchOp]] = {}
        for batch_op in ops:
            by_shard.setdefault(
                self.shard_index(batch_op[1]), []
            ).append(batch_op)
        if len(by_shard) == 1:
            index, sub_ops = next(iter(by_shard.items()))
            self.shards[index].write_batch(sub_ops)
            return
        futures = [
            self._executor.submit(self.shards[index].write_batch, sub_ops)
            for index, sub_ops in by_shard.items()
        ]
        failure: Optional[BaseException] = None
        for future in futures:
            error = future.exception()
            if error is not None and failure is None:
                failure = error
        if failure is not None:
            raise failure

    def scan(
        self, lo: str, hi: str, limit: Optional[int] = None
    ) -> List[Tuple[str, str]]:
        """Scatter-gather range lookup, k-way merged across shards.

        Range routing touches only the shards overlapping ``[lo, hi)``, in
        key order, stopping as soon as ``limit`` pairs are collected. Hash
        routing must scatter to every shard (any shard may own any key in
        the range) — the per-shard scans run concurrently on the store's
        executor, each individually capped at ``limit``, and the sorted
        partial results are k-way merged (shards own disjoint keys, so the
        merge never sees duplicates).
        """
        self._check_open()
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None)")
        if lo >= hi or limit == 0:
            return []
        if self.routing == "range":
            first = bisect.bisect_right(self.boundaries, lo)
            last = bisect.bisect_right(self.boundaries, hi)
            results: List[Tuple[str, str]] = []
            for index in range(first, min(last, len(self.shards) - 1) + 1):
                remaining = None if limit is None else limit - len(results)
                if remaining == 0:
                    break
                results.extend(self.shards[index].scan(lo, hi, remaining))
            return results
        if len(self.shards) == 1:
            return self.shards[0].scan(lo, hi, limit)
        partials = list(
            self._executor.map(
                lambda shard: shard.scan(lo, hi, limit), self.shards
            )
        )
        merged = list(heap_merge(*partials))
        return merged if limit is None else merged[:limit]

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Force every shard's active buffer to disk."""
        self._check_open()
        for shard in self.shards:
            shard.flush()

    def compact_all(self) -> None:
        """Major compaction on every shard."""
        self._check_open()
        for shard in self.shards:
            shard.compact_all()

    def close(self) -> None:
        """Close every shard and release the commit executor. Idempotent.

        Shards close concurrently on the commit executor: each close
        drains that shard's rotated buffers and pending compactions
        (:meth:`LSMTree.close`), so the drains overlap exactly like the
        background work itself did. Shard close errors (e.g. a failed
        background worker surfacing as
        :class:`~repro.errors.BackgroundError`) are collected so every
        shard still gets closed; the first error is re-raised.
        """
        if self._closed:
            return
        self._closed = True
        failure: Optional[BaseException] = None
        futures = [
            self._executor.submit(shard.close) for shard in self.shards
        ]
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if failure is None:
                    failure = exc
        self._executor.shutdown(wait=True)
        if failure is not None:
            raise failure

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("store is closed")

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        config: Optional[LSMConfig],
        wal_dir: str,
        *,
        merge_operator: Optional[MergeOperator] = None,
    ) -> "ShardedStore":
        """Rebuild every shard from its own WAL after a crash.

        The ``shards.json`` manifest fixes shard count and routing, so
        keys re-route exactly as they did before the crash; each shard
        then replays only the segments in its own ``shard-NN/`` directory
        (:meth:`LSMTree.recover`), preserving its independent sequence
        numbers. Shards recover independently — one shard's surviving
        writes are never visible to, or blocked by, another's replay.
        """
        path = os.path.join(wal_dir, MANIFEST_NAME)
        if not os.path.exists(path):
            raise ConfigError(
                f"no {MANIFEST_NAME} in {wal_dir}; not a sharded WAL "
                "directory"
            )
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        return cls(
            manifest["num_shards"],
            config,
            routing=manifest["routing"],
            boundaries=manifest["boundaries"] or None,
            wal_dir=wal_dir,
            merge_operator=merge_operator,
            _recover=True,
        )

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> TreeStats:
        """Rollup of every shard's counters (:meth:`TreeStats.merged`)."""
        return TreeStats.merged([shard.stats for shard in self.shards])

    def backpressure(self) -> Dict[str, object]:
        """Aggregate admission snapshot: the *worst* shard state governs.

        ``state`` is the most severe of the shard states (``stop`` beats
        ``slowdown`` beats ``ok``) — conservative on purpose, since a
        serving layer that admits a write cannot know which shard it will
        route to until it parses the key. The raw quantities aggregate
        (max Level-0 depth, summed immutable buffers) and ``shards``
        carries the full per-shard breakdown for operators.
        """
        per_shard = [shard.backpressure() for shard in self.shards]
        worst = max(
            per_shard, key=lambda s: _STATE_SEVERITY.get(str(s["state"]), 0)
        )
        return {
            "state": worst["state"],
            "level0_runs": max(int(s["level0_runs"]) for s in per_shard),
            "immutable_buffers": sum(
                int(s["immutable_buffers"]) for s in per_shard
            ),
            "slowdown_trigger": worst["slowdown_trigger"],
            "stop_trigger": worst["stop_trigger"],
            "shards": [
                {"shard": index, **snapshot}
                for index, snapshot in enumerate(per_shard)
            ],
        }

    def shard_summary(self) -> List[Dict[str, object]]:
        """Per-shard breakdown served through the server's ``INFO``."""
        return [
            {
                "shard": index,
                "routing": self.routing,
                "levels": len(shard.levels),
                "disk_bytes": shard.total_disk_bytes(),
                "seqno": shard.seqno,
                "puts": shard.stats.puts,
                "deletes": shard.stats.deletes,
                "flushes": shard.stats.flushes,
                "compactions": shard.stats.compactions,
                "backpressure": shard.backpressure()["state"],
            }
            for index, shard in enumerate(self.shards)
        ]

    def total_disk_bytes(self) -> int:
        """Payload bytes across all shards."""
        return sum(shard.total_disk_bytes() for shard in self.shards)

    def max_depth(self) -> int:
        """Deepest shard's level count."""
        return max((len(shard.levels) for shard in self.shards), default=0)

    def write_amplification(self) -> float:
        """Aggregate device bytes written per user byte, across shards."""
        user_bytes = sum(
            shard.stats.user_bytes_written for shard in self.shards
        )
        if user_bytes == 0:
            return 0.0
        device_bytes = sum(
            shard.disk.counters.bytes_written for shard in self.shards
        )
        return device_bytes / user_bytes

    def memory_footprint_bits(self) -> int:
        """Aggregate buffer + filter + fence memory across shards."""
        return sum(shard.memory_footprint_bits() for shard in self.shards)
