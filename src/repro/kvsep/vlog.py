"""WiscKey-style value log (§2.2.2).

"WiscKey introduces an SSD-conscious data layout by decoupling the storage
of keys from values. The LSM-tree simply stores the keys along with pointers
to the values, while the values are stored in a separate log file." Because
compactions then move only (key, pointer) records, write amplification drops
dramatically for workloads with sizable values.

:class:`ValueLog` is that log: an append-only sequence of (key, value)
records addressed by offset, with the standard garbage-collection scheme —
read a window at the tail (oldest data), query the owning tree for liveness,
re-append the survivors at the head, advance the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import CorruptionError
from ..storage.disk import SimulatedDisk

#: Per-record framing overhead charged by the size model (lengths + crc).
RECORD_OVERHEAD_BYTES = 12


@dataclass(frozen=True)
class ValuePointer:
    """Address of one value inside the log: the `(offset, size)` the
    LSM-tree stores in place of the value."""

    offset: int
    size: int

    def encode(self) -> str:
        """Compact string form stored as the tree's value."""
        return f"@vlog:{self.offset}:{self.size}"

    @staticmethod
    def decode(token: str) -> "ValuePointer":
        """Inverse of :meth:`encode`.

        Raises:
            CorruptionError: If the token is not a pointer encoding.
        """
        parts = token.split(":")
        if len(parts) != 3 or parts[0] != "@vlog":
            raise CorruptionError(
                f"not a value pointer (expected '@vlog:<offset>:<size>', "
                f"got {token!r})"
            )
        try:
            return ValuePointer(int(parts[1]), int(parts[2]))
        except ValueError as exc:
            raise CorruptionError(
                f"value pointer fields are not integers: {token!r}"
            ) from exc

    @staticmethod
    def is_pointer(token: str) -> bool:
        """Whether a stored value is a log pointer."""
        return token.startswith("@vlog:")


class ValueLog:
    """Append-only value store with tail-to-head garbage collection.

    Args:
        disk: Device charged for log appends (page-buffered, sequential)
            and for the reads GC and lookups perform.

    The log keeps its records in memory (the disk is an accounting device);
    ``head`` is the append position, ``tail`` the oldest live offset.
    """

    def __init__(self, disk: SimulatedDisk) -> None:
        self._disk = disk
        self._records: Dict[int, Tuple[str, str]] = {}
        self._head = 0
        self._tail = 0
        self._pending_page_bytes = 0
        self.gc_passes = 0
        self.gc_bytes_relocated = 0
        self.gc_bytes_reclaimed = 0

    @property
    def head(self) -> int:
        """Next append offset."""
        return self._head

    @property
    def tail(self) -> int:
        """Oldest potentially-live offset."""
        return self._tail

    @property
    def physical_bytes(self) -> int:
        """Log footprint on the device (head - tail)."""
        return self._head - self._tail

    def append(self, key: str, value: str) -> ValuePointer:
        """Append one record; returns the pointer for the LSM-tree.

        Appends are sequential: device pages are charged as the pending
        bytes cross page boundaries, like the WAL.
        """
        size = len(key) + len(value) + RECORD_OVERHEAD_BYTES
        pointer = ValuePointer(self._head, size)
        self._records[self._head] = (key, value)
        self._head += size
        self._pending_page_bytes += size
        page = self._disk.page_size
        while self._pending_page_bytes >= page:
            self._disk.write(page, cause="vlog")
            self._pending_page_bytes -= page
        return pointer

    def get(self, pointer: ValuePointer, cause: str = "vlog_read") -> str:
        """Read one value; charges one random read of the record's pages.

        Raises:
            CorruptionError: If the pointer references reclaimed or unknown
                space (a dangling pointer is a bug in the caller's GC).
        """
        record = self._records.get(pointer.offset)
        if record is None or pointer.offset < self._tail:
            zone = "reclaimed" if pointer.offset < self._tail else "unknown"
            raise CorruptionError(
                f"dangling value pointer into {zone} log space "
                f"(size {pointer.size}, tail {self._tail}, "
                f"head {self._head})",
                byte_offset=pointer.offset,
            )
        self._disk.read(pointer.size, cause)
        return record[1]

    def garbage_collect(
        self,
        is_live: Callable[[str, ValuePointer], bool],
        relocate: Callable[[str, ValuePointer], None],
        window_bytes: int,
    ) -> int:
        """One GC pass over ``window_bytes`` at the tail.

        Args:
            is_live: Oracle (backed by the LSM-tree) answering whether the
                tree still points at this exact record.
            relocate: Callback invoked with the *new* pointer after a live
                value is re-appended at the head; the caller must update
                the tree.
            window_bytes: How much of the tail to scan.

        Returns:
            Bytes reclaimed (tail advance minus relocated bytes).
        """
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self.gc_passes += 1
        window_end = min(self._head, self._tail + window_bytes)
        self._disk.read(max(0, window_end - self._tail), cause="vlog_gc")

        offset = self._tail
        relocated = 0
        while offset < window_end:
            record = self._records.get(offset)
            if record is None:
                raise CorruptionError(
                    f"value-log hole during GC (no record boundary; "
                    f"tail {self._tail}, window end {window_end})",
                    byte_offset=offset,
                )
            key, value = record
            size = len(key) + len(value) + RECORD_OVERHEAD_BYTES
            old_pointer = ValuePointer(offset, size)
            if is_live(key, old_pointer):
                new_pointer = self.append(key, value)
                relocate(key, new_pointer)
                relocated += size
            del self._records[offset]
            offset += size
        reclaimed = (offset - self._tail) - relocated
        self._tail = offset
        self.gc_bytes_relocated += relocated
        self.gc_bytes_reclaimed += max(0, reclaimed)
        return max(0, reclaimed)

    def live_fraction_estimate(self, live_bytes: int) -> float:
        """Fraction of the physical log that is live (GC trigger input)."""
        if self.physical_bytes <= 0:
            return 1.0
        return min(1.0, live_bytes / self.physical_bytes)
