"""WiscKey-style store: an LSM-tree of keys over a value log (§2.2.2).

:class:`WiscKeyStore` wraps an ordinary :class:`~repro.core.tree.LSMTree`:
values at or above ``separation_threshold`` go to the
:class:`~repro.kvsep.vlog.ValueLog` and the tree stores only a pointer;
small values stay inline (RocksDB's BlobDB draws the same line). The paper's
headline numbers — "significantly reduces (4×) write amplification during
ingestion, while facilitating up to 100× faster data loading" — come from
compactions no longer rewriting the value bytes; experiment E6 reproduces
the shape.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.config import LSMConfig
from ..core.tree import LSMTree
from ..storage.disk import SimulatedDisk
from .vlog import ValueLog, ValuePointer


class WiscKeyStore:
    """Key-value store with WiscKey-style key/value separation.

    Args:
        config: Configuration for the underlying key tree.
        disk: Shared device; defaults to a fresh SSD profile.
        separation_threshold: Values of at least this many bytes are
            separated into the value log; smaller ones stay inline.
        gc_trigger_garbage_fraction: A GC pass runs when at least this
            fraction of the log is estimated dead.
        gc_window_bytes: Tail window each GC pass scans.

    The public surface mirrors :class:`~repro.core.tree.LSMTree` (put/get/
    scan/delete) so benchmarks can swap the two implementations.
    """

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        disk: Optional[SimulatedDisk] = None,
        separation_threshold: int = 128,
        gc_trigger_garbage_fraction: float = 0.5,
        gc_window_bytes: int = 64 * 1024,
    ) -> None:
        if separation_threshold < 1:
            raise ValueError("separation_threshold must be positive")
        if not 0.0 < gc_trigger_garbage_fraction <= 1.0:
            raise ValueError("gc_trigger_garbage_fraction must be in (0, 1]")
        self.disk = disk or SimulatedDisk()
        self.tree = LSMTree(config, disk=self.disk)
        self.vlog = ValueLog(self.disk)
        self.separation_threshold = separation_threshold
        self.gc_trigger_garbage_fraction = gc_trigger_garbage_fraction
        self.gc_window_bytes = gc_window_bytes
        self._live_value_bytes = 0
        self.user_bytes_written = 0

    # -- external operations -------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update, separating large values into the log."""
        self.user_bytes_written += len(key) + len(value)
        if len(value) >= self.separation_threshold:
            pointer = self.vlog.append(key, value)
            self.tree.put(key, pointer.encode())
            self._live_value_bytes += pointer.size
            self._maybe_collect()
        else:
            self.tree.put(key, value)

    def get(self, key: str) -> Optional[str]:
        """Point lookup; dereferences a log pointer when present."""
        stored = self.tree.get(key)
        if stored is None or not ValuePointer.is_pointer(stored):
            return stored
        return self.vlog.get(ValuePointer.decode(stored))

    def scan(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Range scan; each separated value costs one log point-read —
        WiscKey's documented range-query penalty."""
        results = []
        for key, stored in self.tree.scan(lo, hi):
            if ValuePointer.is_pointer(stored):
                results.append(
                    (key, self.vlog.get(ValuePointer.decode(stored), "scan"))
                )
            else:
                results.append((key, stored))
        return results

    def delete(self, key: str) -> None:
        """Logical delete; dead log space is reclaimed by GC later."""
        stored = self.tree.get(key)
        if stored is not None and ValuePointer.is_pointer(stored):
            self._live_value_bytes -= ValuePointer.decode(stored).size
        self.tree.delete(key)
        self._maybe_collect()

    # -- metrics --------------------------------------------------------------

    def write_amplification(self) -> float:
        """Device bytes written per user byte, across tree + log + WAL."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.disk.counters.bytes_written / self.user_bytes_written

    def space_bytes(self) -> int:
        """Physical bytes held by the tree and the live log region."""
        return self.tree.total_disk_bytes() + self.vlog.physical_bytes

    # -- garbage collection ----------------------------------------------------

    def _maybe_collect(self) -> None:
        physical = self.vlog.physical_bytes
        if physical <= 0:
            return
        garbage_fraction = 1.0 - self.vlog.live_fraction_estimate(
            self._live_value_bytes
        )
        if garbage_fraction < self.gc_trigger_garbage_fraction:
            return
        self.collect_garbage()

    def collect_garbage(self) -> int:
        """Run one explicit GC pass; returns reclaimed bytes."""

        def is_live(key: str, pointer: ValuePointer) -> bool:
            stored = self.tree.get(key)
            return (
                stored is not None
                and ValuePointer.is_pointer(stored)
                and ValuePointer.decode(stored).offset == pointer.offset
            )

        def relocate(key: str, pointer: ValuePointer) -> None:
            self.tree.put(key, pointer.encode())

        return self.vlog.garbage_collect(
            is_live, relocate, self.gc_window_bytes
        )
