"""WiscKey-style key-value separation (§2.2.2)."""

from .vlog import RECORD_OVERHEAD_BYTES, ValueLog, ValuePointer
from .wisckey import WiscKeyStore

__all__ = [
    "ValueLog",
    "ValuePointer",
    "RECORD_OVERHEAD_BYTES",
    "WiscKeyStore",
]
