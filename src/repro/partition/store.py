"""Range-partitioned forest of LSM trees (PebblesDB / Nova-LSM, §2.2.2).

"Another way to reduce data movement is by partitioning the key space and
storing the partitions in separate trees." PebblesDB fragments the LSM
structure with key-space guards; Nova-LSM "uses a similar partitioning
algorithm to shard the data across multiple storage components". The effect
both exploit: each shard holds a fraction of the data, so each shard's tree
is *shallower*, and write amplification — which grows with the number of
levels — drops.

:class:`PartitionedStore` realizes the idea directly: a static list of key
boundaries routes every operation to one of N independent
:class:`~repro.core.tree.LSMTree` shards that share one simulated device, so
aggregate amplification is read off the shared counters.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import PartialScanResult, Snapshot, SnapshotLike
from ..core.config import LSMConfig
from ..core.stats import TreeStats
from ..core.tree import LSMTree
from ..storage.disk import SimulatedDisk
from ..workload.distributions import format_key

#: One batched write: ("put" | "delete", key, value-or-None).
BatchOp = Tuple[str, str, Optional[str]]


def range_boundaries(key_count: int, num_shards: int) -> List[str]:
    """Evenly spaced shard boundaries for the canonical key format.

    Returns ``num_shards - 1`` split keys: shard ``i`` owns keys in
    ``[boundary[i-1], boundary[i])`` with open ends at the extremes.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if key_count < num_shards:
        raise ValueError("key_count must be at least num_shards")
    step = key_count / num_shards
    return [format_key(round(step * index)) for index in range(1, num_shards)]


class PartitionedStore:
    """N independent LSM trees behind one key-routing layer.

    Args:
        boundaries: Sorted split keys; ``len(boundaries) + 1`` shards.
        config: Per-shard configuration. Each shard keeps the full buffer
            size — partitioning multiplies memory as well, which is part of
            the real systems' bargain and is reported by
            :meth:`memory_footprint_bits`.
        disk: Shared device (defaults to a fresh SSD profile).
    """

    def __init__(
        self,
        boundaries: Sequence[str],
        config: Optional[LSMConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        ordered = list(boundaries)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("boundaries must be sorted and distinct")
        self.disk = disk or SimulatedDisk()
        self.boundaries = ordered
        self.shards: List[LSMTree] = [
            LSMTree(config, disk=self.disk) for _ in range(len(ordered) + 1)
        ]
        self.user_bytes_written = 0
        #: Serializes multi-shard batch application against snapshot
        #: capture, so a snapshot never observes half a batch. The store
        #: has no WAL (one shared simulated device, no ``wal_dir``), so
        #: no durable coordinator is needed — atomicity only has to hold
        #: against concurrent snapshots, not against crashes.
        self._txn_lock = threading.Lock()

    @property
    def num_shards(self) -> int:
        """Number of independent trees."""
        return len(self.shards)

    def shard_index(self, key: str) -> int:
        """Index of the shard owning ``key``."""
        return bisect.bisect_right(self.boundaries, key)

    def shard_for(self, key: str) -> LSMTree:
        """The tree owning ``key``."""
        return self.shards[self.shard_index(key)]

    # -- external operations --------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` in its owning shard."""
        self.user_bytes_written += len(key) + len(value)
        self.shard_for(key).put(key, value)

    def get(
        self, key: str, at: Optional[SnapshotLike] = None
    ) -> Optional[str]:
        """Point lookup in the owning shard only; ``at=`` reads as of a
        store-wide snapshot."""
        index = self.shard_index(key)
        if at is None:
            return self.shards[index].get(key)
        seq = Snapshot.coerce(at).seqno_for(index)
        return self.shards[index].get(key, at=seq)

    def snapshot(self) -> Snapshot:
        """Capture a store-wide consistent read point.

        Pins every shard's tip seqno under the same lock multi-shard
        batch application holds, so the capture never lands between one
        batch's sub-batches.
        """
        with self._txn_lock:
            pins = {
                index: shard.snapshot_pin()
                for index, shard in enumerate(self.shards)
            }

        def release() -> None:
            for index, seq in pins.items():
                self.shards[index].snapshot_release(seq)

        return Snapshot(pins, release=release)

    def delete(self, key: str) -> None:
        """Logical delete in the owning shard."""
        self.shard_for(key).delete(key)

    def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        *,
        at: Optional[SnapshotLike] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Range scan stitched across the shards it overlaps.

        Shards hold disjoint, ordered key ranges, so concatenating the
        per-shard results in shard order is already globally sorted;
        ``limit`` propagates to each shard and stops the walk early.
        ``at=`` reads every shard at its snapshot-pinned seqno. Shards
        here share one process and cannot be individually unavailable, so
        ``allow_partial=True`` only changes the return type to a
        (complete) :class:`PartialScanResult`.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None)")
        snap = None if at is None else Snapshot.coerce(at)
        results: List[Tuple[str, str]] = []
        if lo < hi and limit != 0:
            first = bisect.bisect_right(self.boundaries, lo)
            # hi is exclusive, so bisect_left: a scan ending exactly on a
            # boundary never touches the next shard (it owns keys >= hi).
            last = bisect.bisect_left(self.boundaries, hi)
            for index in range(first, min(last, len(self.shards) - 1) + 1):
                remaining = None if limit is None else limit - len(results)
                if remaining == 0:
                    break
                if snap is None:
                    results.extend(
                        self.shards[index].scan(lo, hi, remaining)
                    )
                else:
                    results.extend(
                        self.shards[index].scan(
                            lo, hi, remaining, at=snap.seqno_for(index)
                        )
                    )
        if allow_partial:
            return PartialScanResult(results, [])
        return results

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Split a batch by shard and commit one sub-batch per shard.

        Validation happens up front (a malformed op raises ``ValueError``
        with nothing applied). A multi-shard batch applies under the
        transaction lock, so :meth:`snapshot` sees it entirely or not at
        all; a single-shard batch skips the lock (the shard's own commit
        is already atomic). There is no durable cross-shard commit point
        — the store has no WAL, so there is no crash to recover from.
        """
        if not ops:
            return
        for op, key, value in ops:
            if not key:
                raise ValueError("keys must be non-empty")
            if op == "put":
                if value is None:
                    raise ValueError("put ops need a value")
            elif op != "delete":
                raise ValueError(f"unknown batch op {op!r}")
        self.user_bytes_written += sum(
            len(key) + (len(value) if value is not None else 0)
            for _op, key, value in ops
        )
        by_shard: Dict[int, List[BatchOp]] = {}
        for batch_op in ops:
            by_shard.setdefault(
                self.shard_index(batch_op[1]), []
            ).append(batch_op)
        if len(by_shard) == 1:
            index, sub_ops = next(iter(by_shard.items()))
            self.shards[index].write_batch(sub_ops)
            return
        with self._txn_lock:
            for index in sorted(by_shard):
                self.shards[index].write_batch(by_shard[index])

    def flush(self) -> None:
        """Force every shard's active buffer to disk."""
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        """Close every shard."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "PartitionedStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # -- metrics ---------------------------------------------------------------

    @property
    def stats(self) -> TreeStats:
        """Rollup of every shard's counters (:meth:`TreeStats.merged`)."""
        return TreeStats.merged([shard.stats for shard in self.shards])

    def backpressure(self) -> Dict[str, object]:
        """Aggregate admission snapshot: the worst shard state governs."""
        severity = {"ok": 0, "slowdown": 1, "stop": 2}
        per_shard = [shard.backpressure() for shard in self.shards]
        worst = max(
            per_shard, key=lambda s: severity.get(str(s["state"]), 0)
        )
        return {
            "state": worst["state"],
            "level0_runs": max(int(s["level0_runs"]) for s in per_shard),
            "immutable_buffers": sum(
                int(s["immutable_buffers"]) for s in per_shard
            ),
            "slowdown_trigger": worst["slowdown_trigger"],
            "stop_trigger": worst["stop_trigger"],
        }

    def write_amplification(self) -> float:
        """Aggregate device bytes written per user byte."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.disk.counters.bytes_written / self.user_bytes_written

    def total_disk_bytes(self) -> int:
        """Payload bytes across all shards."""
        return sum(shard.total_disk_bytes() for shard in self.shards)

    def max_depth(self) -> int:
        """Deepest shard's level count — the WA driver partitioning cuts."""
        return max(
            (len(shard.levels) for shard in self.shards), default=0
        )

    def memory_footprint_bits(self) -> int:
        """Aggregate buffer + filter + fence memory across shards."""
        return sum(shard.memory_footprint_bits() for shard in self.shards)

    def compaction_bytes(self) -> int:
        """Total bytes rewritten by compactions (the data movement
        partitioning is meant to reduce)."""
        return sum(
            shard.stats.compaction_bytes_written for shard in self.shards
        )

    def shard_summary(self) -> List[Dict[str, object]]:
        """Per-shard diagnostics."""
        return [
            {
                "shard": index,
                "levels": len(shard.levels),
                "disk_bytes": shard.total_disk_bytes(),
                "compaction_bytes": shard.stats.compaction_bytes_written,
            }
            for index, shard in enumerate(self.shards)
        ]
