"""Range-partitioned forest of LSM trees (PebblesDB / Nova-LSM, §2.2.2).

"Another way to reduce data movement is by partitioning the key space and
storing the partitions in separate trees." PebblesDB fragments the LSM
structure with key-space guards; Nova-LSM "uses a similar partitioning
algorithm to shard the data across multiple storage components". The effect
both exploit: each shard holds a fraction of the data, so each shard's tree
is *shallower*, and write amplification — which grows with the number of
levels — drops.

:class:`PartitionedStore` realizes the idea directly: a static list of key
boundaries routes every operation to one of N independent
:class:`~repro.core.tree.LSMTree` shards that share one simulated device, so
aggregate amplification is read off the shared counters.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import LSMConfig
from ..core.tree import LSMTree
from ..storage.disk import SimulatedDisk
from ..workload.distributions import format_key


def range_boundaries(key_count: int, num_shards: int) -> List[str]:
    """Evenly spaced shard boundaries for the canonical key format.

    Returns ``num_shards - 1`` split keys: shard ``i`` owns keys in
    ``[boundary[i-1], boundary[i])`` with open ends at the extremes.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if key_count < num_shards:
        raise ValueError("key_count must be at least num_shards")
    step = key_count / num_shards
    return [format_key(round(step * index)) for index in range(1, num_shards)]


class PartitionedStore:
    """N independent LSM trees behind one key-routing layer.

    Args:
        boundaries: Sorted split keys; ``len(boundaries) + 1`` shards.
        config: Per-shard configuration. Each shard keeps the full buffer
            size — partitioning multiplies memory as well, which is part of
            the real systems' bargain and is reported by
            :meth:`memory_footprint_bits`.
        disk: Shared device (defaults to a fresh SSD profile).
    """

    def __init__(
        self,
        boundaries: Sequence[str],
        config: Optional[LSMConfig] = None,
        disk: Optional[SimulatedDisk] = None,
    ) -> None:
        ordered = list(boundaries)
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError("boundaries must be sorted and distinct")
        self.disk = disk or SimulatedDisk()
        self.boundaries = ordered
        self.shards: List[LSMTree] = [
            LSMTree(config, disk=self.disk) for _ in range(len(ordered) + 1)
        ]
        self.user_bytes_written = 0

    @property
    def num_shards(self) -> int:
        """Number of independent trees."""
        return len(self.shards)

    def shard_for(self, key: str) -> LSMTree:
        """The tree owning ``key``."""
        return self.shards[bisect.bisect_right(self.boundaries, key)]

    # -- external operations --------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` in its owning shard."""
        self.user_bytes_written += len(key) + len(value)
        self.shard_for(key).put(key, value)

    def get(self, key: str) -> Optional[str]:
        """Point lookup in the owning shard only."""
        return self.shard_for(key).get(key)

    def delete(self, key: str) -> None:
        """Logical delete in the owning shard."""
        self.shard_for(key).delete(key)

    def scan(self, lo: str, hi: str) -> List[Tuple[str, str]]:
        """Range scan stitched across the shards it overlaps."""
        if lo >= hi:
            return []
        first = bisect.bisect_right(self.boundaries, lo)
        last = bisect.bisect_right(self.boundaries, hi)
        results: List[Tuple[str, str]] = []
        for index in range(first, min(last, len(self.shards) - 1) + 1):
            results.extend(self.shards[index].scan(lo, hi))
        return results

    def close(self) -> None:
        """Close every shard."""
        for shard in self.shards:
            shard.close()

    # -- metrics ---------------------------------------------------------------

    def write_amplification(self) -> float:
        """Aggregate device bytes written per user byte."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.disk.counters.bytes_written / self.user_bytes_written

    def total_disk_bytes(self) -> int:
        """Payload bytes across all shards."""
        return sum(shard.total_disk_bytes() for shard in self.shards)

    def max_depth(self) -> int:
        """Deepest shard's level count — the WA driver partitioning cuts."""
        return max(
            (len(shard.levels) for shard in self.shards), default=0
        )

    def memory_footprint_bits(self) -> int:
        """Aggregate buffer + filter + fence memory across shards."""
        return sum(shard.memory_footprint_bits() for shard in self.shards)

    def compaction_bytes(self) -> int:
        """Total bytes rewritten by compactions (the data movement
        partitioning is meant to reduce)."""
        return sum(
            shard.stats.compaction_bytes_written for shard in self.shards
        )

    def shard_summary(self) -> List[Dict[str, object]]:
        """Per-shard diagnostics."""
        return [
            {
                "shard": index,
                "levels": len(shard.levels),
                "disk_bytes": shard.total_disk_bytes(),
                "compaction_bytes": shard.stats.compaction_bytes_written,
            }
            for index, shard in enumerate(self.shards)
        ]
