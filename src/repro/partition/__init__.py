"""Key-space partitioning: a forest of LSM trees (§2.2.2)."""

from .store import PartitionedStore, range_boundaries

__all__ = ["PartitionedStore", "range_boundaries"]
