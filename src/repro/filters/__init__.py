"""Probabilistic filters for point and range queries (§2.1.3)."""

from .base import PointFilter, RangeFilter
from .bloom import BloomFilter, key_digest, optimal_num_hashes, theoretical_fpr
from .cuckoo import ChuckyIndex, CuckooFilter
from .prefix_bloom import PrefixBloomFilter, common_prefix_length, next_prefix
from .rosetta import RosettaFilter, dyadic_cover, numeric_suffix_codec
from .surf import SurfFilter

__all__ = [
    "PointFilter",
    "RangeFilter",
    "BloomFilter",
    "key_digest",
    "optimal_num_hashes",
    "theoretical_fpr",
    "CuckooFilter",
    "ChuckyIndex",
    "PrefixBloomFilter",
    "common_prefix_length",
    "next_prefix",
    "RosettaFilter",
    "dyadic_cover",
    "numeric_suffix_codec",
    "SurfFilter",
]
