"""Common interfaces for the probabilistic filters (§2.1.3).

Two families exist:

* **Point filters** answer "may this run contain key k?" and let a point
  lookup skip probing a run entirely on a negative (Bloom, cuckoo).
* **Range filters** answer "may this run contain any key in [lo, hi]?" and
  protect range queries from superfluous I/O (prefix Bloom, Rosetta, SuRF).

All filters are *approximate set membership* structures: false positives are
allowed and tunable, false negatives never are — the property tests enforce
the no-false-negative guarantee on every implementation.
"""

from __future__ import annotations

import abc
from typing import Iterable


class PointFilter(abc.ABC):
    """May-contain filter probed by point lookups before touching disk."""

    @abc.abstractmethod
    def add(self, key: str) -> None:
        """Insert ``key`` into the filter."""

    @abc.abstractmethod
    def may_contain(self, key: str) -> bool:
        """``False`` only if ``key`` was definitely never added."""

    @property
    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Memory footprint in bits (for RUM accounting)."""

    def add_all(self, keys: Iterable[str]) -> None:
        """Bulk-insert convenience."""
        for key in keys:
            self.add(key)


class RangeFilter(abc.ABC):
    """May-overlap filter probed by range queries before touching disk."""

    @abc.abstractmethod
    def add(self, key: str) -> None:
        """Insert ``key`` into the filter."""

    @abc.abstractmethod
    def may_contain_range(self, lo: str, hi: str) -> bool:
        """``False`` only if no added key falls in ``[lo, hi)``."""

    @property
    @abc.abstractmethod
    def memory_bits(self) -> int:
        """Memory footprint in bits (for RUM accounting)."""

    def add_all(self, keys: Iterable[str]) -> None:
        """Bulk-insert convenience."""
        for key in keys:
            self.add(key)
