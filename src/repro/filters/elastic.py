"""ElasticBF-style hotness-aware Bloom filtering (§2.1.3).

"ElasticBF addresses access skew by employing multiple small filter units
per Bloom filter." The insight: a fixed bits-per-key budget wastes memory
on cold SSTables and starves hot ones. ElasticBF builds each file's filter
as several independent *units*; all units exist (they are cheap to build at
file creation), but only some are *loaded* in memory at a time. A false
positive must pass every loaded unit, so a file's in-memory false positive
rate is the product of its loaded units' rates — and a manager shifts
units between files as access frequencies evolve, keeping total memory
constant while hot files enjoy low FPRs.

:class:`ElasticBloomFilter` is the per-file unit stack;
:class:`ElasticFilterManager` is the memory-budgeted rebalancer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import FilterError
from .base import PointFilter
from .bloom import BloomFilter, Digest


class ElasticBloomFilter(PointFilter):
    """A stack of independent Bloom-filter units with a loadable prefix.

    Args:
        keys: The file's key set (units are built together at file build).
        num_units: Units the filter is divided into.
        bits_per_key_per_unit: Budget of each unit.
        loaded_units: How many units start loaded in memory.

    Probing consults only the loaded prefix of the stack; loading more
    units multiplies false positive rates together, loading fewer saves
    memory at the cost of more false positives.
    """

    def __init__(
        self,
        keys: Iterable[str],
        num_units: int = 4,
        bits_per_key_per_unit: float = 2.0,
        loaded_units: int = 1,
    ) -> None:
        if num_units < 1:
            raise FilterError("num_units must be at least 1")
        if not 0 <= loaded_units <= num_units:
            raise FilterError("loaded_units must be in [0, num_units]")
        key_list = list(keys)
        self._units: List[BloomFilter] = []
        for unit_index in range(num_units):
            unit = BloomFilter.for_keys(
                (f"{unit_index}#{key}" for key in key_list),
                bits_per_key_per_unit,
            )
            assert unit is not None
            self._units.append(unit)
        self.loaded_units = loaded_units
        self.accesses = 0

    @property
    def num_units(self) -> int:
        """Total units built for this file."""
        return len(self._units)

    @property
    def memory_bits(self) -> int:
        """Bits of the *loaded* prefix (the in-memory footprint)."""
        return sum(
            unit.memory_bits for unit in self._units[: self.loaded_units]
        )

    @property
    def total_bits(self) -> int:
        """Bits across all units (the on-disk footprint)."""
        return sum(unit.memory_bits for unit in self._units)

    def add(self, key: str) -> None:
        raise FilterError(
            "elastic filters are built over a complete key set; rebuild"
        )

    def may_contain(self, key: str) -> bool:
        """Probe the loaded units; all must say maybe."""
        self.accesses += 1
        for unit_index in range(self.loaded_units):
            if not self._units[unit_index].may_contain(f"{unit_index}#{key}"):
                return False
        return True

    def may_contain_digest(self, digest: Digest) -> bool:
        """Digest-probe compatibility shim: elastic units salt per-unit, so
        the shared digest cannot be reused; falls back to hashing."""
        raise FilterError(
            "elastic filters prepend unit salts; probe with may_contain()"
        )

    def expected_fpr(self) -> float:
        """Product of the loaded units' theoretical rates."""
        rate = 1.0
        for unit in self._units[: self.loaded_units]:
            rate *= unit.expected_fpr()
        return rate


class ElasticFilterManager:
    """Rebalances loaded units across files under one memory budget.

    Args:
        budget_units: Total units that may be loaded across all files.
        decay: Multiplicative decay applied to access counts each
            rebalance, so the hot set can drift.

    Call :meth:`register` for every file's filter, :meth:`rebalance`
    periodically (e.g. every N lookups); the manager assigns more loaded
    units to frequently probed filters, fewer to cold ones, keeping
    ``sum(loaded_units) <= budget_units``.
    """

    def __init__(self, budget_units: int, decay: float = 0.8) -> None:
        if budget_units < 0:
            raise FilterError("budget_units must be non-negative")
        if not 0 < decay <= 1:
            raise FilterError("decay must be in (0, 1]")
        self.budget_units = budget_units
        self.decay = decay
        self._filters: Dict[int, ElasticBloomFilter] = {}
        self._heat: Dict[int, float] = {}

    def register(self, file_id: int, filt: ElasticBloomFilter) -> None:
        """Track a file's filter (starts with its current loaded prefix)."""
        self._filters[file_id] = filt
        self._heat.setdefault(file_id, 0.0)

    def unregister(self, file_id: int) -> None:
        """Stop tracking a retired file."""
        self._filters.pop(file_id, None)
        self._heat.pop(file_id, None)

    def record_access(self, file_id: int) -> None:
        """Note one probe of a file's filter."""
        if file_id in self._heat:
            self._heat[file_id] += 1.0

    def rebalance(self) -> None:
        """Redistribute the unit budget proportionally to (decayed) heat.

        Hot files get up to their full unit stack; cold files may drop to
        one unit (never zero: a filter that admits everything is useless).
        """
        if not self._filters:
            return
        total_heat = sum(self._heat.values())
        remaining = self.budget_units
        # Everyone keeps one unit first (floor), then heat buys the rest.
        for filt in self._filters.values():
            filt.loaded_units = min(1, filt.num_units)
            remaining -= filt.loaded_units
        if total_heat > 0 and remaining > 0:
            by_heat = sorted(
                self._filters, key=lambda fid: -self._heat[fid]
            )
            # Greedy hottest-first: fill the hottest file's unit stack
            # completely before spending on colder files — a unit helps
            # most where probes concentrate (ElasticBF's allocation).
            for file_id in by_heat:
                if remaining <= 0:
                    break
                if self._heat[file_id] <= 0:
                    continue
                filt = self._filters[file_id]
                grant = min(filt.num_units - filt.loaded_units, remaining)
                filt.loaded_units += grant
                remaining -= grant
        for file_id in self._heat:
            self._heat[file_id] *= self.decay

    def loaded_units_total(self) -> int:
        """Currently loaded units across all files."""
        return sum(filt.loaded_units for filt in self._filters.values())

    def memory_bits(self) -> int:
        """In-memory bits across all tracked filters."""
        return sum(filt.memory_bits for filt in self._filters.values())
