"""Cuckoo filter: a deletable, Bloom-competitive point filter (§2.1.3).

Chucky replaces an LSM tree's many Bloom filters with one updatable cuckoo
filter that doubles as an index. This module provides the underlying
structure: a partial-key cuckoo hash table storing short fingerprints in
4-slot buckets, supporting insert, lookup, and — unlike Bloom — deletion.
An optional payload per fingerprint slot turns it into the filter-plus-index
hybrid Chucky describes (:class:`ChuckyIndex`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import FilterError
from .base import PointFilter
from .bloom import key_digest

_SLOTS_PER_BUCKET = 4
_MAX_KICKS = 500


def _fingerprint(key: str, bits: int) -> int:
    """A non-zero ``bits``-wide fingerprint of ``key`` (0 marks empty)."""
    digest = key_digest(key)[0]
    fp = digest & ((1 << bits) - 1)
    return fp if fp else 1


class CuckooFilter(PointFilter):
    """Partial-key cuckoo filter with 4-way buckets.

    Args:
        capacity: Expected number of keys; the table is sized with ~5%
            headroom so inserts succeed with high probability.
        fingerprint_bits: Width of stored fingerprints; 8-12 bits give
            Bloom-competitive false positive rates at lower space.
        seed: Seed for the random eviction choices, for reproducibility.

    Raises:
        FilterError: On insert once the table is genuinely full (after the
            eviction loop exhausts itself) — callers should rebuild bigger.
    """

    def __init__(
        self, capacity: int, fingerprint_bits: int = 12, seed: int = 0
    ) -> None:
        if capacity < 1:
            raise FilterError("capacity must be positive")
        if not 4 <= fingerprint_bits <= 32:
            raise FilterError("fingerprint_bits must be in [4, 32]")
        self.fingerprint_bits = fingerprint_bits
        num_buckets = 1
        needed = max(1, int(capacity * 1.05) // _SLOTS_PER_BUCKET + 1)
        while num_buckets < needed:
            num_buckets *= 2  # power of two so XOR indexing stays in range
        self._num_buckets = num_buckets
        self._buckets: List[List[int]] = [[] for _ in range(num_buckets)]
        self._rng = random.Random(seed)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def memory_bits(self) -> int:
        return self._num_buckets * _SLOTS_PER_BUCKET * self.fingerprint_bits

    def _indexes(self, key: str) -> Tuple[int, int, int]:
        fp = _fingerprint(key, self.fingerprint_bits)
        index1 = key_digest(key)[1] % self._num_buckets
        index2 = self._alt_index(index1, fp)
        return fp, index1, index2

    def _alt_index(self, index: int, fp: int) -> int:
        # Standard partial-key trick: xor with a hash of the fingerprint.
        return (index ^ (fp * 0x5BD1E995)) % self._num_buckets

    def add(self, key: str) -> None:
        fp, index1, index2 = self._indexes(key)
        for index in (index1, index2):
            if len(self._buckets[index]) < _SLOTS_PER_BUCKET:
                self._buckets[index].append(fp)
                self._count += 1
                return
        # Both home buckets full: evict a random resident and relocate it.
        index = self._rng.choice((index1, index2))
        for _ in range(_MAX_KICKS):
            slot = self._rng.randrange(_SLOTS_PER_BUCKET)
            fp, self._buckets[index][slot] = self._buckets[index][slot], fp
            index = self._alt_index(index, fp)
            if len(self._buckets[index]) < _SLOTS_PER_BUCKET:
                self._buckets[index].append(fp)
                self._count += 1
                return
        raise FilterError("cuckoo filter is full; rebuild with more capacity")

    def may_contain(self, key: str) -> bool:
        fp, index1, index2 = self._indexes(key)
        return fp in self._buckets[index1] or fp in self._buckets[index2]

    def remove(self, key: str) -> bool:
        """Delete one occurrence of ``key``'s fingerprint.

        Returns whether anything was removed. Deleting a key that was never
        added may remove a colliding fingerprint — the standard cuckoo
        filter caveat; only delete keys known to be present.
        """
        fp, index1, index2 = self._indexes(key)
        for index in (index1, index2):
            if fp in self._buckets[index]:
                self._buckets[index].remove(fp)
                self._count -= 1
                return True
        return False


class ChuckyIndex:
    """Chucky-style combined filter + index over the whole tree (§2.1.3).

    One updatable cuckoo-hash structure maps each key's fingerprint to the
    identifier of the *run* holding its newest version, so a point lookup
    goes straight to one run instead of probing filters level by level.
    False positives (fingerprint collisions) send the lookup to a run that
    may not hold the key — same failure mode, different topology.
    """

    def __init__(
        self, capacity: int, fingerprint_bits: int = 16, seed: int = 0
    ) -> None:
        if capacity < 1:
            raise FilterError("capacity must be positive")
        self.fingerprint_bits = fingerprint_bits
        self._slots: Dict[Tuple[int, int], int] = {}
        self._num_buckets = max(8, capacity)
        self._seed = seed

    def _slot(self, key: str) -> Tuple[int, int]:
        fp = _fingerprint(key, self.fingerprint_bits)
        return (key_digest(key)[1] % self._num_buckets, fp)

    def assign(self, key: str, run_id: int) -> None:
        """Record that the newest version of ``key`` lives in ``run_id``."""
        self._slots[self._slot(key)] = run_id

    def lookup(self, key: str) -> Optional[int]:
        """Run expected to hold ``key``, or ``None`` (definitely absent)."""
        return self._slots.get(self._slot(key))

    def drop_run(self, run_id: int) -> int:
        """Forget every assignment pointing at a retired run."""
        victims = [slot for slot, rid in self._slots.items() if rid == run_id]
        for slot in victims:
            del self._slots[slot]
        return len(victims)

    @property
    def memory_bits(self) -> int:
        # fingerprint + run id (~16 bits) per occupied slot.
        return len(self._slots) * (self.fingerprint_bits + 16)
