"""Prefix Bloom filter: the long-range-query filter (§2.1.3).

"Prefix filters use fixed-length key-prefixes to answer long range
membership queries." A Bloom filter is built over the length-``p`` prefix of
every key. The filter can then answer exactly the queries RocksDB's prefix
Bloom answers:

* *prefix queries* — "any key starting with P?" — with one probe;
* *range queries contained in one prefix bucket* — one probe;
* *narrow ranges spanning a few sibling buckets* — one probe per bucket.

Anything wider conservatively returns "maybe": a prefix filter cannot rule
out arbitrary ranges, which is exactly why it suits long prefix-aligned
ranges and why Rosetta was built for the short arbitrary ones (§2.1.3).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import FilterError
from .base import RangeFilter
from .bloom import BloomFilter

#: Keys shorter than the prefix length are padded with NUL, which sorts
#: before every printable character, so bucket order matches key order.
_PAD = "\x00"


def common_prefix_length(lo: str, hi: str) -> int:
    """Length of the longest shared prefix of two strings."""
    length = 0
    for left, right in zip(lo, hi):
        if left != right:
            break
        length += 1
    return length


def next_prefix(prefix: str) -> Optional[str]:
    """Smallest string greater than every string starting with ``prefix``.

    ``None`` when no such string exists (prefix is all U+10FFFF).
    """
    chars = list(prefix)
    while chars:
        code = ord(chars[-1])
        if code < 0x10FFFF:
            chars[-1] = chr(code + 1)
            return "".join(chars)
        chars.pop()
    return None


class PrefixBloomFilter(RangeFilter):
    """Bloom filter over fixed-length key prefixes.

    Args:
        prefix_length: Characters of each key hashed into the filter.
        expected_keys: Sizing hint; distinct prefixes never exceed keys.
        bits_per_key: Filter budget per added key.
        max_probes: How many sibling buckets a narrow range query may
            probe before giving up and answering "maybe".
    """

    def __init__(
        self,
        prefix_length: int,
        expected_keys: int,
        bits_per_key: float = 10.0,
        max_probes: int = 64,
    ) -> None:
        if prefix_length < 1:
            raise FilterError("prefix_length must be at least 1")
        if max_probes < 1:
            raise FilterError("max_probes must be at least 1")
        self.prefix_length = prefix_length
        self.max_probes = max_probes
        num_bits = max(64, int(bits_per_key * max(1, expected_keys)))
        self._bloom = BloomFilter(num_bits, max(1, round(bits_per_key * 0.69)))
        self._prefixes_added = 0

    @property
    def memory_bits(self) -> int:
        return self._bloom.memory_bits

    def _bucket(self, key: str) -> str:
        return key[: self.prefix_length].ljust(self.prefix_length, _PAD)

    def add(self, key: str) -> None:
        self._bloom.add(self._bucket(key))
        self._prefixes_added += 1

    def add_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(key)

    def may_contain_prefix(self, prefix: str) -> bool:
        """One-probe prefix query: "may any added key start with this?"

        ``prefix`` must be exactly ``prefix_length`` characters — that is
        the granularity the filter was built at.
        """
        if len(prefix) != self.prefix_length:
            raise FilterError(
                f"probe prefixes must have length {self.prefix_length}"
            )
        return self._bloom.may_contain(prefix)

    def may_contain_range(self, lo: str, hi: str) -> bool:
        """``False`` only if no added key falls in ``[lo, hi)``.

        Decides the query only when it touches at most ``max_probes``
        prefix buckets that the filter can enumerate (a shared prefix of at
        least ``prefix_length - 1`` characters); wider ranges return
        ``True`` ("maybe"), never a false negative.
        """
        if lo >= hi:
            return False
        shared = common_prefix_length(lo, hi)
        if shared >= self.prefix_length:
            return self._bloom.may_contain(self._bucket(lo))
        if shared < self.prefix_length - 1:
            return True  # too wide for a fixed-prefix filter to decide

        # Endpoints differ in the bucket's final character: the query spans
        # sibling buckets lo_char .. hi_char that can be probed one by one.
        position = self.prefix_length - 1
        lo_code = ord(lo[position]) if len(lo) > position else 0
        if len(hi) > position:
            # Bucket hi[:p] itself is included only if hi extends past it.
            hi_code = ord(hi[position]) + (1 if len(hi) > position + 1 else 0)
        else:
            hi_code = 0
        if hi_code - lo_code > self.max_probes:
            return True
        stem = lo[:position].ljust(position, _PAD)
        for code in range(lo_code, hi_code):
            if self._bloom.may_contain(stem + chr(code)):
                return True
        return False
