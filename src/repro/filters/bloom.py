"""Bloom filters, the workhorse point-query filter of LSM engines (§2.1.3).

State-of-the-art LSM engines maintain one Bloom filter per sorted run so a
point lookup can skip probing a run altogether on a negative. This module
provides:

* :class:`BloomFilter` — a standard k-hash Bloom filter over a numpy bit
  array, built either from a bits-per-key budget or an explicit false
  positive rate.
* **Hash sharing** (§2.1.3, Zhu et al.): :func:`key_digest` computes a
  single 128-bit digest per key that every filter in the tree re-uses via
  :meth:`BloomFilter.may_contain_digest`, so a lookup hashes the key once
  rather than once per level — the CPU optimization the tutorial highlights.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Optional, Tuple

import numpy as np

from ..errors import FilterError
from .base import PointFilter

#: Digest type shared across filters: two independent 64-bit lanes used for
#: double hashing (h_i = h1 + i * h2).
Digest = Tuple[int, int]

_MASK64 = (1 << 64) - 1


def key_digest(key: str) -> Digest:
    """One stable 128-bit digest of ``key``, split into two 64-bit lanes.

    Computing this once per lookup and sharing it across every level's
    filter implements the hash-sharing technique of §2.1.3.
    """
    raw = hashlib.blake2b(key.encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(raw[:8], "little"),
        int.from_bytes(raw[8:], "little") | 1,  # odd => full-period stride
    )


def optimal_num_hashes(bits_per_key: float) -> int:
    """The k minimizing the false positive rate for a given bits/key."""
    if bits_per_key <= 0:
        return 0
    return max(1, round(bits_per_key * math.log(2)))


def bits_for_fpr(num_keys: int, fpr: float) -> int:
    """Bits needed so ``num_keys`` keys yield false-positive rate ``fpr``."""
    if not 0 < fpr < 1:
        raise FilterError("false positive rate must be in (0, 1)")
    if num_keys <= 0:
        return 8
    return max(8, math.ceil(-num_keys * math.log(fpr) / (math.log(2) ** 2)))


def theoretical_fpr(num_keys: int, num_bits: int) -> float:
    """Expected false-positive rate of an optimally-hashed Bloom filter."""
    if num_bits <= 0:
        return 1.0
    if num_keys <= 0:
        return 0.0
    return math.exp(-(num_bits / num_keys) * (math.log(2) ** 2))


class BloomFilter(PointFilter):
    """A standard Bloom filter with double hashing over a numpy bit array.

    Args:
        num_bits: Size of the bit array. Rounded up to at least 8.
        num_hashes: Number of probe positions per key.

    Use :meth:`for_keys` or :meth:`with_fpr` rather than the raw constructor
    when building from a budget.
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits < 1:
            raise FilterError("a Bloom filter needs at least one bit")
        if num_hashes < 1:
            raise FilterError("a Bloom filter needs at least one hash")
        self._num_bits = max(8, int(num_bits))
        self._num_hashes = int(num_hashes)
        self._bits = np.zeros((self._num_bits + 7) // 8, dtype=np.uint8)
        self._num_added = 0

    @classmethod
    def for_keys(
        cls, keys: Iterable[str], bits_per_key: float
    ) -> Optional["BloomFilter"]:
        """Build a filter sized at ``bits_per_key`` over ``keys``.

        Returns ``None`` when ``bits_per_key`` is zero (filters disabled) —
        callers treat a missing filter as "always maybe".
        """
        if bits_per_key <= 0:
            return None
        key_list = list(keys)
        num_bits = max(8, math.ceil(bits_per_key * max(1, len(key_list))))
        bloom = cls(num_bits, optimal_num_hashes(bits_per_key))
        bloom.add_all(key_list)
        return bloom

    @classmethod
    def with_fpr(cls, keys: Iterable[str], fpr: float) -> Optional["BloomFilter"]:
        """Build a filter targeting false-positive rate ``fpr`` over ``keys``.

        Returns ``None`` for ``fpr >= 1`` — a filter that admits everything
        is no filter at all, which is exactly what the Monkey allocation
        assigns to the deepest levels under tight memory (§2.1.3).
        """
        if fpr >= 1.0:
            return None
        key_list = list(keys)
        num_bits = bits_for_fpr(len(key_list), fpr)
        bits_per_key = num_bits / max(1, len(key_list))
        bloom = cls(num_bits, optimal_num_hashes(bits_per_key))
        bloom.add_all(key_list)
        return bloom

    @property
    def num_bits(self) -> int:
        """Size of the bit array."""
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        """Probes per key."""
        return self._num_hashes

    @property
    def num_added(self) -> int:
        """Keys inserted so far."""
        return self._num_added

    @property
    def memory_bits(self) -> int:
        return self._num_bits

    def _positions(self, digest: Digest) -> Iterable[int]:
        h1, h2 = digest
        for i in range(self._num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self._num_bits

    def add(self, key: str) -> None:
        self.add_digest(key_digest(key))

    def add_digest(self, digest: Digest) -> None:
        """Insert a pre-hashed key (hash-sharing write path)."""
        for pos in self._positions(digest):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._num_added += 1

    def may_contain(self, key: str) -> bool:
        return self.may_contain_digest(key_digest(key))

    def may_contain_digest(self, digest: Digest) -> bool:
        """Probe with a pre-computed digest (hash-sharing read path)."""
        for pos in self._positions(digest):
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def expected_fpr(self) -> float:
        """Theoretical false-positive rate at the current load."""
        if self._num_added == 0:
            return 0.0
        exponent = -self._num_hashes * self._num_added / self._num_bits
        return (1.0 - math.exp(exponent)) ** self._num_hashes

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self._num_bits}, hashes={self._num_hashes}, "
            f"keys={self._num_added})"
        )
