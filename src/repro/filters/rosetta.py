"""Rosetta-style range filter: a hierarchy of Bloom filters (§2.1.3).

"Rosetta introduces a range filter comprising of a hierarchy of Bloom
filters that can logically construct a segment tree", which "is a better
fit for short range queries". Keys are treated as fixed-width integers;
for every key, each of its bit-prefixes is inserted into the Bloom filter
of the corresponding depth. A range query is decomposed into O(log R)
dyadic intervals; each interval's prefix is probed at its depth, and a
positive is *doubted* by drilling down to the leaf level — a leaf-level
positive is required before the filter answers "maybe", which is what keeps
short-range false positive rates low.

Engine keys are strings; a ``codec`` maps them onto the integer domain.
:func:`numeric_suffix_codec` handles the ``key00000042`` style keys used
throughout the library.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, List, Tuple

from ..errors import FilterError
from .base import RangeFilter
from .bloom import BloomFilter

_DIGITS = re.compile(r"(\d+)")


def numeric_suffix_codec(key: str) -> int:
    """Map a key to an integer via its last run of digits (else a hash)."""
    match = None
    for match in _DIGITS.finditer(key):
        pass
    if match is not None:
        return int(match.group(1))
    return abs(hash(key))


def dyadic_cover(lo: int, hi: int, key_bits: int) -> List[Tuple[int, int]]:
    """Decompose ``[lo, hi]`` (inclusive) into maximal dyadic intervals.

    Returns ``(prefix_value, depth)`` pairs, where ``depth`` is the number
    of leading bits the interval fixes (``key_bits`` means a single key).
    """
    if lo > hi:
        return []
    cover: List[Tuple[int, int]] = []
    while lo <= hi:
        # Largest power-of-two block aligned at lo and fitting in [lo, hi].
        size = lo & -lo if lo else 1 << key_bits
        while size > hi - lo + 1:
            size //= 2
        depth = key_bits - size.bit_length() + 1
        cover.append((lo >> (key_bits - depth), depth))
        lo += size
    return cover


class RosettaFilter(RangeFilter):
    """Segment-tree-of-Blooms range filter over an integer key domain.

    Args:
        expected_keys: Sizing hint for each per-depth Bloom filter.
        key_bits: Width of the integer key domain (values are masked).
        bits_per_key_per_level: Bloom budget per key at each depth. Rosetta
            skews memory toward deeper levels; a uniform per-level budget
            keeps the implementation transparent while preserving the
            doubting behaviour the paper relies on.
        min_depth: Shallowest maintained Bloom level. Levels shallower than
            this answer "maybe" unconditionally (they would be nearly
            always-positive anyway), saving memory exactly as Rosetta's
            memory tuning does.
        codec: Key-to-integer mapping for string keys.
    """

    def __init__(
        self,
        expected_keys: int,
        key_bits: int = 32,
        bits_per_key_per_level: float = 2.0,
        min_depth: int = 8,
        codec: Callable[[str], int] = numeric_suffix_codec,
    ) -> None:
        if key_bits < 1 or key_bits > 64:
            raise FilterError("key_bits must be in [1, 64]")
        if min_depth < 1 or min_depth > key_bits:
            raise FilterError("min_depth must be in [1, key_bits]")
        self.key_bits = key_bits
        self.min_depth = min_depth
        self.codec = codec
        num_bits = max(64, int(bits_per_key_per_level * max(1, expected_keys)))
        self._blooms: List[BloomFilter] = [
            BloomFilter(num_bits, 4) for _ in range(key_bits - min_depth + 1)
        ]
        self._mask = (1 << key_bits) - 1

    @property
    def memory_bits(self) -> int:
        return sum(bloom.memory_bits for bloom in self._blooms)

    def _bloom_at(self, depth: int) -> BloomFilter:
        return self._blooms[depth - self.min_depth]

    def add(self, key: str) -> None:
        self.add_int(self.codec(key))

    def add_int(self, value: int) -> None:
        """Insert an integer key: one prefix per maintained depth."""
        value &= self._mask
        for depth in range(self.min_depth, self.key_bits + 1):
            prefix = value >> (self.key_bits - depth)
            self._bloom_at(depth).add(f"{depth}:{prefix}")

    def add_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.add(key)

    def _probe(self, prefix: int, depth: int) -> bool:
        """Probe with doubting: drill a positive down to the leaf level."""
        if depth < self.min_depth:
            # No filter this shallow: doubt by descending to both children.
            return self._probe(prefix << 1, depth + 1) or self._probe(
                (prefix << 1) | 1, depth + 1
            )
        if not self._bloom_at(depth).may_contain(f"{depth}:{prefix}"):
            return False
        if depth == self.key_bits:
            return True  # leaf-level positive: cannot doubt further
        return self._probe(prefix << 1, depth + 1) or self._probe(
            (prefix << 1) | 1, depth + 1
        )

    def may_contain_int_range(self, lo: int, hi: int) -> bool:
        """``False`` only if no added integer lies in ``[lo, hi]``."""
        lo = max(0, lo) & self._mask
        hi = hi & self._mask
        for prefix, depth in dyadic_cover(lo, hi, self.key_bits):
            if self._probe(prefix, depth):
                return True
        return False

    def may_contain_range(self, lo: str, hi: str) -> bool:
        """String-range probe via the codec: ``[lo, hi)`` semantics.

        The codec must be order-preserving over the keys in use (true for
        zero-padded numeric keys); otherwise the filter degrades to more
        false positives but never false negatives for codec-consistent
        probes of added keys.
        """
        if lo >= hi:
            return False
        return self.may_contain_int_range(self.codec(lo), self.codec(hi) - 1)
