"""SuRF-style pruned-trie range filter (§2.1.3).

SuRF is "a succinct trie-based filter that supports storing variable length
prefixes of keys, thus allowing fewer false positives for long range
queries". This implementation keeps SuRF's *semantics* — a trie pruned at
each key's shortest distinguishing prefix, optionally extended with a few
suffix bits (SuRF-Hash / SuRF-Real) — over a plain pointer-based trie
rather than succinct LOUDS bitvectors. The space constant differs; the
false-positive behaviour across range lengths, which is what the tutorial
discusses, is the same (see the substitution note in DESIGN.md §2).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional

from ..errors import FilterError
from .base import RangeFilter
from .bloom import key_digest


class _TrieNode:
    __slots__ = ("children", "terminal")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        self.terminal = False


class SurfFilter(RangeFilter):
    """Pruned-trie approximate set with point and range membership.

    Args:
        keys: The full key set of the run (SuRF is built at file-build
            time, like any run filter).
        suffix_bits: Extra per-key hash bits stored at the leaves
            (SuRF-Hash): 0 reproduces SuRF-Base; more bits cut point-query
            false positives at a memory cost. Range queries cannot use the
            hash bits, exactly as in the paper.
        real_suffix_chars: Characters of real key suffix kept past the
            distinguishing prefix (SuRF-Real): improves both point and
            range filtering a little.

    The structure stores, for each key, its shortest prefix that
    distinguishes it from every *other* key in the set (plus the optional
    suffix). Any probe that reaches a stored leaf is a "maybe".
    """

    def __init__(
        self,
        keys: Iterable[str],
        suffix_bits: int = 0,
        real_suffix_chars: int = 0,
    ) -> None:
        if suffix_bits < 0 or suffix_bits > 32:
            raise FilterError("suffix_bits must be in [0, 32]")
        if real_suffix_chars < 0:
            raise FilterError("real_suffix_chars must be non-negative")
        self.suffix_bits = suffix_bits
        key_list = sorted(set(keys))
        if not key_list:
            raise FilterError("SuRF requires at least one key")

        # Shortest distinguishing prefix: one character past the longest
        # common prefix with either sorted neighbour.
        prefixes: List[str] = []
        for index, key in enumerate(key_list):
            needed = 0
            for neighbour_index in (index - 1, index + 1):
                if 0 <= neighbour_index < len(key_list):
                    shared = self._common(key, key_list[neighbour_index])
                    needed = max(needed, shared + 1)
            cut = min(len(key), needed + real_suffix_chars)
            prefixes.append(key[: max(1, cut)])

        self._leaves: List[str] = sorted(set(prefixes))
        self._leaf_set = set(self._leaves)
        self._suffix_hash: Dict[str, int] = {}
        if suffix_bits:
            mask = (1 << suffix_bits) - 1
            for key, prefix in zip(key_list, prefixes):
                self._suffix_hash[prefix] = key_digest(key)[0] & mask
        self._trie = self._build_trie(self._leaves)

    @staticmethod
    def _common(left: str, right: str) -> int:
        length = 0
        for a, b in zip(left, right):
            if a != b:
                break
            length += 1
        return length

    @staticmethod
    def _build_trie(leaves: List[str]) -> _TrieNode:
        root = _TrieNode()
        for leaf in leaves:
            node = root
            for char in leaf:
                node = node.children.setdefault(char, _TrieNode())
            node.terminal = True
        return root

    @property
    def memory_bits(self) -> int:
        """Approximate footprint: trie edges plus suffix hash bits."""

        def count_edges(node: _TrieNode) -> int:
            return len(node.children) + sum(
                count_edges(child) for child in node.children.values()
            )

        return 16 * count_edges(self._trie) + self.suffix_bits * len(
            self._leaves
        )

    def add(self, key: str) -> None:
        raise FilterError(
            "SuRF is built over a complete key set; rebuild instead of adding"
        )

    def _matching_leaf(self, key: str) -> Optional[str]:
        """The stored leaf that is a prefix of ``key``, if any."""
        node = self._trie
        matched = []
        for char in key:
            if node.terminal:
                break
            child = node.children.get(char)
            if child is None:
                return None
            matched.append(char)
            node = child
        return "".join(matched) if node.terminal else None

    def may_contain(self, key: str) -> bool:
        """Point probe: ``False`` only if ``key`` was never in the set."""
        leaf = self._matching_leaf(key)
        if leaf is None:
            return False
        if self.suffix_bits:
            mask = (1 << self.suffix_bits) - 1
            return self._suffix_hash[leaf] == (key_digest(key)[0] & mask)
        return True

    def may_contain_range(self, lo: str, hi: str) -> bool:
        """``False`` only if no set key lies in ``[lo, hi)``.

        Equivalent to SuRF's ``moveToKeyGreaterThan(lo)`` + bound check:
        find the smallest stored leaf not entirely below ``lo`` and test it
        against ``hi``. A leaf that is a *prefix* of ``lo`` may extend into
        the range, so it answers "maybe" — SuRF's range false positives.
        """
        if lo >= hi:
            return False
        # Any stored leaf that is a prefix of lo could extend past lo.
        if any(
            lo[:length] in self._leaf_set for length in range(1, len(lo) + 1)
        ):
            return True
        position = bisect.bisect_left(self._leaves, lo)
        if position == len(self._leaves):
            return False
        return self._leaves[position] < hi
