"""Fence pointers: per-block min/max key metadata (§2.1.3).

"Virtually any LSM-tree design is supported by fence pointers (a special
form of Zonemaps) that store information about the smallest and largest keys
in every disk page." A fence index lets a point lookup descend to exactly
one candidate data block per run, and lets a range scan touch only the
blocks that overlap the requested interval.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BlockBounds:
    """Smallest and largest key of one data block."""

    first_key: str
    last_key: str


class FenceIndex:
    """In-memory index over a run's data blocks.

    Args:
        bounds: Per-block key bounds in ascending, non-overlapping order.

    Raises:
        ValueError: If the bounds are unsorted or overlapping — fence
            pointers are only meaningful over a sorted run.
    """

    def __init__(self, bounds: Sequence[BlockBounds]) -> None:
        for blk in bounds:
            if blk.first_key > blk.last_key:
                raise ValueError("block bounds must satisfy first <= last")
        for left, right in zip(bounds, bounds[1:]):
            if left.last_key >= right.first_key:
                raise ValueError("fence blocks must be sorted and disjoint")
        self._bounds = list(bounds)
        self._firsts = [blk.first_key for blk in self._bounds]

    def __len__(self) -> int:
        return len(self._bounds)

    @property
    def min_key(self) -> Optional[str]:
        """Smallest key covered, or ``None`` for an empty index."""
        return self._bounds[0].first_key if self._bounds else None

    @property
    def max_key(self) -> Optional[str]:
        """Largest key covered, or ``None`` for an empty index."""
        return self._bounds[-1].last_key if self._bounds else None

    @property
    def memory_bits(self) -> int:
        """Approximate in-memory footprint (two keys per block)."""
        return sum(
            8 * (len(blk.first_key) + len(blk.last_key)) for blk in self._bounds
        )

    def locate(self, key: str) -> Optional[int]:
        """Index of the single block that may hold ``key``, else ``None``.

        Because blocks are sorted and disjoint, at most one block can
        contain any key — this is what bounds a fenced lookup at one data
        page per run (experiment E4).
        """
        pos = bisect.bisect_right(self._firsts, key) - 1
        if pos < 0:
            return None
        if self._bounds[pos].last_key < key:
            return None
        return pos

    def overlap(self, lo: str, hi: str) -> Tuple[int, int]:
        """Half-open block-index range overlapping keys in ``[lo, hi)``."""
        if not self._bounds or lo >= hi:
            return (0, 0)
        start = bisect.bisect_right(self._firsts, lo) - 1
        if start < 0 or self._bounds[start].last_key < lo:
            start += 1
        stop = bisect.bisect_left(self._firsts, hi)
        return (min(start, stop), stop)

    def bounds(self) -> List[BlockBounds]:
        """Copy of the per-block bounds."""
        return list(self._bounds)
