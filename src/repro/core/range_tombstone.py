"""Range tombstones: logical deletion of whole key ranges (§2.3.3).

"While some systems also support range delete operations, current
implementations fail to provide latency bounds on persistent data
deletion." This module provides the range-delete substrate the engine
builds on, following RocksDB's DeleteRange design in spirit:

* a :class:`RangeTombstone` invalidates every *older* version of every key
  in ``[lo, hi)``;
* tombstones are not interleaved with point entries — each SSTable carries
  its applicable tombstones as separate metadata (RocksDB's range-del
  block), consulted before the table's point data;
* a table's *effective* key range is widened by its tombstones' spans, so
  compaction overlap computations never let a newer tombstone sink past
  older data it covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Size model: two keys plus the usual per-entry metadata overhead.
RANGE_TOMBSTONE_OVERHEAD_BYTES = 10


@dataclass(frozen=True)
class RangeTombstone:
    """One range deletion: ``[lo, hi)`` at sequence number ``seqno``.

    Attributes:
        lo: Inclusive start key.
        hi: Exclusive end key; must sort after ``lo``.
        seqno: Global sequence number; the tombstone shadows strictly
            older versions only.
        stamp_us: Simulated creation time (drives persistence-latency
            measurements, mirroring point-tombstone ages).
    """

    lo: str
    hi: str
    seqno: int
    stamp_us: float = 0.0

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("range tombstone needs lo < hi")
        if self.seqno < 0:
            raise ValueError("sequence numbers are non-negative")

    def covers(self, key: str) -> bool:
        """Whether ``key`` falls inside the deleted range."""
        return self.lo <= key < self.hi

    def shadows(self, key: str, seqno: int) -> bool:
        """Whether a version of ``key`` at ``seqno`` is invalidated."""
        return self.covers(key) and seqno < self.seqno

    def overlaps(self, lo: str, hi: str) -> bool:
        """Whether the tombstone's span intersects ``[lo, hi]``."""
        return self.lo <= hi and lo < self.hi

    @property
    def size(self) -> int:
        """Charged on-disk footprint in bytes."""
        return len(self.lo) + len(self.hi) + RANGE_TOMBSTONE_OVERHEAD_BYTES

    def identity(self) -> Tuple[str, str, int]:
        """Dedup key: copies of one tombstone share (lo, hi, seqno)."""
        return (self.lo, self.hi, self.seqno)


def dedupe(tombstones: Iterable[RangeTombstone]) -> List[RangeTombstone]:
    """Drop duplicate copies (tombstones replicate across a run's files)."""
    seen = {}
    for tombstone in tombstones:
        seen.setdefault(tombstone.identity(), tombstone)
    return sorted(seen.values(), key=lambda t: (t.lo, t.hi, -t.seqno))


def max_covering_seqno(
    tombstones: Sequence[RangeTombstone], key: str
) -> int:
    """Largest tombstone seqno covering ``key``, or ``-1`` when uncovered."""
    best = -1
    for tombstone in tombstones:
        if tombstone.covers(key) and tombstone.seqno > best:
            best = tombstone.seqno
    return best


def overlapping(
    tombstones: Sequence[RangeTombstone], lo: str, hi: str
) -> List[RangeTombstone]:
    """Tombstones whose span intersects ``[lo, hi]``."""
    return [t for t in tombstones if t.overlaps(lo, hi)]
