"""Merge operators: server-side read-modify-write (§2.2.6).

"State-of-the-art systems also support read-modify-write operations, which
are particularly useful for stream processing use cases" — RocksDB exposes
them as the *merge operator*. Instead of the client reading, modifying, and
re-writing a value (one I/O round-trip per update), it appends a cheap
``MERGE`` operand; the engine folds operands into the base value lazily, at
read time or during compaction, using an application-supplied
:class:`MergeOperator`.

Contract (mirroring RocksDB):

* :meth:`MergeOperator.full_merge` combines a base value (or ``None`` when
  the key never existed / was deleted) with the operands **oldest first**,
  producing the final value.
* :meth:`MergeOperator.partial_merge` combines adjacent operands (oldest
  first) into one, letting compactions shrink operand stacks even before
  the base value is reachable.
* Both must be associative in the obvious way:
  ``full_merge(b, xs + ys) == full_merge(full_merge(b, xs), ys)``.
"""

from __future__ import annotations

import abc
from typing import List, Optional


class MergeOperator(abc.ABC):
    """Application-defined semantics for folding operands into values."""

    @abc.abstractmethod
    def full_merge(
        self, key: str, base: Optional[str], operands: List[str]
    ) -> str:
        """Produce the final value from a base and oldest-first operands."""

    def partial_merge(self, key: str, operands: List[str]) -> Optional[str]:
        """Combine adjacent operands (oldest first) into one, or ``None``
        if this operator cannot combine operands without the base (the
        engine then keeps the stack)."""
        return None


class StringAppendOperator(MergeOperator):
    """Concatenate operands onto the base with a separator (list-append)."""

    def __init__(self, separator: str = ",") -> None:
        self.separator = separator

    def full_merge(
        self, key: str, base: Optional[str], operands: List[str]
    ) -> str:
        parts = ([base] if base is not None else []) + list(operands)
        return self.separator.join(parts)

    def partial_merge(self, key: str, operands: List[str]) -> Optional[str]:
        return self.separator.join(operands)


class Int64AddOperator(MergeOperator):
    """Numeric counters: operands are integer deltas (RocksDB's uint64add).

    A missing base counts as zero; malformed bases are treated as zero
    rather than failing the read, matching the forgiving behaviour counter
    deployments want.
    """

    @staticmethod
    def _to_int(text: Optional[str]) -> int:
        if text is None:
            return 0
        try:
            return int(text)
        except ValueError:
            return 0

    def full_merge(
        self, key: str, base: Optional[str], operands: List[str]
    ) -> str:
        total = self._to_int(base)
        for operand in operands:
            total += self._to_int(operand)
        return str(total)

    def partial_merge(self, key: str, operands: List[str]) -> Optional[str]:
        return str(sum(self._to_int(operand) for operand in operands))


class MaxOperator(MergeOperator):
    """Keep the lexicographically largest value seen (high-watermarks)."""

    def full_merge(
        self, key: str, base: Optional[str], operands: List[str]
    ) -> str:
        candidates = ([base] if base is not None else []) + list(operands)
        return max(candidates)

    def partial_merge(self, key: str, operands: List[str]) -> Optional[str]:
        return max(operands)


def resolve_merge(
    operator: MergeOperator,
    key: str,
    base: Optional[str],
    operands_newest_first: List[str],
) -> str:
    """Apply a newest-first operand stack (as reads collect it) to a base."""
    return operator.full_merge(key, base, list(reversed(operands_newest_first)))
