"""Engine-level statistics: the observable performance space (§2.3).

The tutorial frames LSM performance as a multi-way tradeoff between read
cost, write cost, delete cost, memory footprint, and space utilization (the
RUM space and beyond). :class:`TreeStats` gathers the raw counters the
engine produces, and exposes the derived amplification metrics every
experiment reports:

* **Write amplification** — device bytes written per user byte ingested.
* **Read amplification** — pages read per point lookup.
* **Space amplification** — on-disk bytes per live user byte.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Dict, List


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class TreeStats:
    """Mutable counters accumulated by one :class:`~repro.core.tree.LSMTree`.

    All byte quantities are user-visible payload bytes; the paired
    :class:`~repro.storage.disk.SimulatedDisk` counters hold the
    device-level page-granular totals.

    Thread safety: in background mode (:mod:`repro.concurrency`) counters
    are bumped from client threads *and* flush/compaction workers. The
    engine's own hot paths go through :meth:`incr` / :meth:`add_sample`,
    which serialize on an internal lock; per-probe read-path counters
    (filter/fence/cache) remain plain attributes and are best-effort under
    concurrency — they steer no control flow.
    """

    # -- write path -------------------------------------------------------
    puts: int = 0
    deletes: int = 0
    single_deletes: int = 0
    merges: int = 0
    range_deletes: int = 0
    user_bytes_written: int = 0
    flushes: int = 0
    flushed_bytes: int = 0
    stall_us: float = 0.0
    stall_events: int = 0
    #: Writes delayed (not stopped) by the L0 slowdown trigger (§2.2.3);
    #: only background mode produces these — the synchronous engine stalls.
    slowdown_us: float = 0.0
    slowdown_events: int = 0

    # -- compaction -------------------------------------------------------
    compactions: int = 0
    compaction_bytes_read: int = 0
    compaction_bytes_written: int = 0
    entries_garbage_collected: int = 0
    tombstones_dropped: int = 0
    #: Age (simulated us) of each tombstone at the moment it was persistently
    #: purged — the "time to persistent deletion" Lethe bounds (§2.3.3).
    tombstone_drop_ages_us: List[float] = field(default_factory=list)
    range_tombstones_dropped: int = 0
    #: Same ages for range tombstones — the latency bound the tutorial
    #: notes current systems fail to provide for range deletes (§2.3.3).
    range_tombstone_drop_ages_us: List[float] = field(default_factory=list)

    # -- read path --------------------------------------------------------
    gets: int = 0
    gets_found: int = 0
    scans: int = 0
    runs_probed: int = 0
    filter_probes: int = 0
    filter_negatives: int = 0
    filter_false_positives: int = 0
    fence_misses: int = 0
    blocks_from_cache: int = 0
    blocks_from_disk: int = 0

    # -- latency samples (simulated us; wall-clock us in background mode) --
    write_latencies_us: List[float] = field(default_factory=list)
    read_latencies_us: List[float] = field(default_factory=list)

    #: Serializes cross-thread counter updates; excluded from equality and
    #: repr so two stats objects still compare by their counters alone.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def incr(self, counter: str, amount: float = 1) -> None:
        """Atomically add ``amount`` to the named counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def add_sample(self, series: str, value: float) -> None:
        """Atomically append ``value`` to the named sample list."""
        with self._lock:
            getattr(self, series).append(value)

    def record_write_latency(self, micros: float) -> None:
        """Record the latency of one external write."""
        self.add_sample("write_latencies_us", micros)

    def record_read_latency(self, micros: float) -> None:
        """Record the latency of one external read."""
        self.add_sample("read_latencies_us", micros)

    @classmethod
    def merged(cls, parts: List["TreeStats"]) -> "TreeStats":
        """A rollup: every counter summed, every sample list concatenated.

        Aggregating stores (:class:`~repro.partition.PartitionedStore`,
        :class:`~repro.shard.ShardedStore`) expose this as their
        ``stats``, so ``store.stats.to_dict()`` has the same shape no
        matter how many trees sit behind the store. Each part is copied
        under its own lock, so the rollup is per-shard consistent even
        while background workers are bumping counters.
        """
        total = cls()
        for part in parts:
            with part._lock:
                for spec in fields(cls):
                    if spec.name.startswith("_"):
                        continue
                    value = getattr(part, spec.name)
                    if isinstance(value, list):
                        getattr(total, spec.name).extend(value)
                    else:
                        setattr(
                            total,
                            spec.name,
                            getattr(total, spec.name) + value,
                        )
        return total

    def write_amplification(self, device_bytes_written: int) -> float:
        """Device bytes written per user byte ingested."""
        if self.user_bytes_written == 0:
            return 0.0
        return device_bytes_written / self.user_bytes_written

    def read_amplification(self, device_pages_read: int) -> float:
        """Device pages read per point lookup."""
        if self.gets == 0:
            return 0.0
        return device_pages_read / self.gets

    @property
    def filter_skip_rate(self) -> float:
        """Fraction of filter probes that saved a run probe."""
        if self.filter_probes == 0:
            return 0.0
        return self.filter_negatives / self.filter_probes

    def to_dict(self) -> Dict[str, object]:
        """A stable, JSON-serializable snapshot of every counter.

        Scalar counters appear under their field names; the latency and
        tombstone-age sample lists are summarized (count + percentiles)
        rather than dumped raw, so the snapshot stays small no matter how
        long the tree has run. Taken atomically under the stats lock, so
        the snapshot is internally consistent even while background
        workers are bumping counters — this is what the server's ``INFO``
        command and the benchmark reports consume.
        """
        scalars: Dict[str, object] = {}
        samples: Dict[str, List[float]] = {}
        with self._lock:
            for spec in fields(self):
                if spec.name.startswith("_"):
                    continue
                value = getattr(self, spec.name)
                if isinstance(value, list):
                    samples[spec.name] = list(value)
                else:
                    scalars[spec.name] = value
        for name, series in samples.items():
            scalars[name.replace("_us", "") + "_summary_us"] = {
                "count": len(series),
                "p50": percentile(series, 0.50),
                "p99": percentile(series, 0.99),
                "p999": percentile(series, 0.999),
                "max": max(series) if series else 0.0,
            }
        scalars["filter_skip_rate"] = self.filter_skip_rate
        return scalars

    def latency_summary(self) -> Dict[str, float]:
        """p50/p99/p999 of the recorded write and read latencies."""
        return {
            "write_p50_us": percentile(self.write_latencies_us, 0.50),
            "write_p99_us": percentile(self.write_latencies_us, 0.99),
            "write_p999_us": percentile(self.write_latencies_us, 0.999),
            "read_p50_us": percentile(self.read_latencies_us, 0.50),
            "read_p99_us": percentile(self.read_latencies_us, 0.99),
            "read_p999_us": percentile(self.read_latencies_us, 0.999),
        }
