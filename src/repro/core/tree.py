"""The LSM tree: orchestration of every component (§2.1).

:class:`LSMTree` wires together the memory buffers (§2.1.1-A), write-ahead
logging, flushing and compaction (§2.1.2), the auxiliary read structures
(§2.1.3), and the statistics that expose the performance space (§2.3). All
I/O flows through one :class:`~repro.storage.disk.SimulatedDisk`, so every
experiment can read write/read/space amplification directly off the tree.

By default the engine is synchronous: flushes and compactions run inline
and their simulated time is charged to the triggering write, which is
precisely how write stalls manifest (§2.2.3) and what experiment E13's
scheduler simulation then relaxes. With
``LSMConfig(background_mode=True)`` they instead run on worker threads
(:mod:`repro.concurrency`): writers only pay WAL + buffer time plus
explicit backpressure, and reads snapshot the tree's structure under the
manifest lock so they never block behind a running compaction.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import nullcontext
from typing import ContextManager, Dict, Iterator, List, Optional, Tuple

from ..compaction.executor import CompactionExecutor, iter_all_versions
from ..compaction.layouts import make_layout
from ..compaction.picker import make_picker
from ..compaction.planner import CompactionPlanner, last_data_level
from ..concurrency import BackgroundCoordinator, ImmutableBuffer
from ..cost.allocation import monkey_bits_per_key
from ..errors import (
    BackgroundError,
    ClosedError,
    ConfigError,
    SnapshotExpiredError,
)
from ..faults.registry import fault_point
from ..filters.bloom import key_digest
from ..storage.block_cache import BlockCache, HeatTracker
from ..storage.disk import SimulatedDisk
from .config import LSMConfig
from .entry import Entry, EntryKind
from .level import Level
from .memtable import LockedMemTable, MemTable, make_memtable
from .merge_operator import MergeOperator
from .range_tombstone import RangeTombstone, dedupe, max_covering_seqno
from .run import SortedRun
from .sstable import ReadContext
from .stats import TreeStats
from .wal import CommitHook, WriteAheadLog

#: Overwritten versions kept alive for open snapshots before the tree
#: gives up and expires them (honest degradation beats unbounded memory).
_SNAPSHOT_PIN_CAP = 8192


class LSMTree:
    """A log-structured merge tree over a simulated disk.

    Args:
        config: Tuning knobs; defaults to :class:`LSMConfig`'s defaults.
        disk: Device to charge; a fresh SSD-profile disk when omitted.
        wal_dir: Directory for real WAL segment files. ``None`` (default)
            keeps the log in memory only — I/O accounting is identical, but
            :meth:`recover` needs a real directory.

    Example:
        >>> tree = LSMTree()
        >>> tree.put("user42", "hello")
        >>> tree.get("user42")
        'hello'
        >>> tree.delete("user42")
        >>> tree.get("user42") is None
        True
    """

    def __init__(
        self,
        config: Optional[LSMConfig] = None,
        disk: Optional[SimulatedDisk] = None,
        wal_dir: Optional[str] = None,
        merge_operator: Optional[MergeOperator] = None,
    ) -> None:
        self.config = config or LSMConfig()
        self.config.validate()
        self.disk = disk or SimulatedDisk()
        self.stats = TreeStats()
        self.cache: Optional[BlockCache] = (
            BlockCache(self.config.block_cache_bytes)
            if self.config.block_cache_bytes > 0
            else None
        )
        self.heat: Optional[HeatTracker] = (
            HeatTracker() if self.config.cache_prefetch else None
        )
        self.layout = make_layout(self.config)
        self.picker = make_picker(self.config.picker)
        self.planner = CompactionPlanner(self.config, self.layout, self.picker)
        self.merge_operator = merge_operator
        self.executor = CompactionExecutor(
            self.config,
            self.disk,
            self.stats,
            self.cache,
            self.heat,
            merge_operator=merge_operator,
        )
        if self.config.filter_allocation == "monkey":
            self.executor.bits_for_level = self._monkey_bits_for_level
        self.levels: List[Level] = []
        self._wal_dir = wal_dir
        self._wal_segment_id = 0
        #: Serializes writers: seqno claim + WAL append + buffer insert are
        #: one atomic step. Uncontended (and therefore cheap) in sync mode.
        self._write_mutex = threading.RLock()
        self._rotation_seq = 0
        #: Post-commit tap installed by replication (see
        #: :meth:`set_wal_commit_hook`); threaded into every WAL segment.
        self._wal_commit_hook: Optional[CommitHook] = None
        self._active: MemTable = self._make_buffer()
        self._active_wal = self._new_wal_segment()
        #: Range tombstones issued against the active buffer (flushed with
        #: it; the memtable itself holds only point entries).
        self._active_tombstones: List[RangeTombstone] = []
        #: Immutable (rotated) buffers awaiting flush, oldest first.
        self._immutable: List[ImmutableBuffer] = []
        self._next_seqno = 0
        #: Prepared-but-undecided two-phase-commit groups, by txn id.
        self._pending_txns: Dict[int, List[Entry]] = {}
        #: Active snapshot seqnos -> refcount (guarded by the write mutex).
        self._snapshots: Dict[int, int] = {}
        #: Versions an in-buffer overwrite dropped while a snapshot still
        #: needed them (cleared when the last snapshot is released).
        self._pinned: List[Entry] = []
        #: Oldest seqno still consistently readable via ``at=``; reads
        #: below it raise SnapshotExpiredError. Bumped when a compaction
        #: may have dropped superseded versions or the pin cap is hit.
        self._snap_floor = -1
        self._closed = False
        #: Worker threads for flush/compaction; ``None`` in sync mode.
        #: Created last — workers see a fully constructed tree.
        self._background: Optional[BackgroundCoordinator] = (
            BackgroundCoordinator(self) if self.config.background_mode else None
        )

    # ------------------------------------------------------------------
    # external operations (§2.1.2): put / get / scan / delete
    # ------------------------------------------------------------------

    def put(self, key: str, value: str) -> None:
        """Insert or update ``key`` out-of-place (§2.1.1-B)."""
        if not key:
            raise ValueError("keys must be non-empty")
        if value is None:
            raise ValueError("use delete() to remove a key")
        self._before_write()
        with self._write_mutex:
            entry = Entry(
                key,
                value,
                self._claim_seqno(),
                EntryKind.PUT,
                self.disk.now_us,
            )
            self.stats.incr("puts")
            self._write(entry)

    def delete(self, key: str) -> None:
        """Logically delete ``key`` by inserting a tombstone (§2.1.2)."""
        if not key:
            raise ValueError("keys must be non-empty")
        self._before_write()
        with self._write_mutex:
            entry = Entry(
                key,
                None,
                self._claim_seqno(),
                EntryKind.DELETE,
                self.disk.now_us,
            )
            self.stats.incr("deletes")
            self._write(entry)

    def single_delete(self, key: str) -> None:
        """Single-delete: for keys written at most once (§2.3.3).

        The tombstone annihilates with the first matching older entry it is
        compacted with, rather than surviving to the bottom level.
        """
        if not key:
            raise ValueError("keys must be non-empty")
        self._before_write()
        with self._write_mutex:
            entry = Entry(
                key,
                None,
                self._claim_seqno(),
                EntryKind.SINGLE_DELETE,
                self.disk.now_us,
            )
            self.stats.incr("single_deletes")
            self._write(entry)

    def merge(self, key: str, operand: str) -> None:
        """Read-modify-write without the read (§2.2.6): append an operand.

        Requires a :class:`~repro.core.merge_operator.MergeOperator` to have
        been passed at construction; the engine folds operands into the base
        value lazily at read and compaction time. Within the active buffer,
        operands are combined eagerly so the buffer keeps one entry per key.
        """
        if not key:
            raise ValueError("keys must be non-empty")
        if self.merge_operator is None:
            raise ConfigError(
                "merge() requires a merge_operator at tree construction"
            )
        self._before_write()
        with self._write_mutex:
            self._merge_locked(key, operand)

    def _merge_locked(self, key: str, operand: str) -> None:
        """The read-combine-write of :meth:`merge`, under the write mutex
        so the buffered-entry read and the write are one atomic step."""
        seqno = self._claim_seqno()
        now = self.disk.now_us
        buffered = self._active.get(key)
        if buffered is not None and buffered.seqno <= max_covering_seqno(
            self._active_tombstones, key
        ):
            # A newer range tombstone shadows the buffered entry; combining
            # with it would resurrect deleted state. Start from an empty
            # base, exactly as the buffered point-tombstone branch does.
            # (Tombstones newer than an active-buffer entry can only live
            # in _active_tombstones: rotation moves both together.)
            entry = Entry(
                key,
                self.merge_operator.full_merge(key, None, [operand]),
                seqno,
                EntryKind.PUT,
                now,
            )
        elif buffered is None:
            entry = Entry(key, operand, seqno, EntryKind.MERGE, now)
        elif buffered.kind is EntryKind.PUT:
            entry = Entry(
                key,
                self.merge_operator.full_merge(key, buffered.value, [operand]),
                seqno,
                EntryKind.PUT,
                now,
            )
        elif buffered.kind is EntryKind.MERGE:
            combined = self.merge_operator.partial_merge(
                key, [buffered.value, operand]  # type: ignore[list-item]
            )
            if combined is None:
                raise ConfigError(
                    "merge operators used with this engine must implement "
                    "partial_merge"
                )
            entry = Entry(key, combined, seqno, EntryKind.MERGE, now)
        else:  # buffered tombstone: merge starts from an empty base
            entry = Entry(
                key,
                self.merge_operator.full_merge(key, None, [operand]),
                seqno,
                EntryKind.PUT,
                now,
            )
        self.stats.incr("merges")
        self._write(entry)

    def write_batch(
        self, ops: List[Tuple[str, str, Optional[str]]]
    ) -> None:
        """Apply several writes as one atomic group commit (§2.1.1-A).

        ``ops`` is a list of ``(op, key, value)`` tuples where ``op`` is
        ``"put"`` (value required) or ``"delete"`` (value ignored). The
        whole batch claims consecutive sequence numbers under one
        acquisition of the write mutex and is journaled with a single
        WAL flush (:meth:`~repro.core.wal.WriteAheadLog.append_batch`),
        which is the engine-side half of the server's group commit. The
        batch is validated up front: a malformed op raises ``ValueError``
        before any entry is applied.
        """
        if not ops:
            return
        normalized = self._normalize_batch(ops)
        self._before_write()
        with self._write_mutex:
            # Hot path: one clock read, one seqno range claim, and three
            # counter updates for the whole batch instead of per entry.
            stamp = self.disk.now_us
            first_seqno = self._next_seqno
            self._next_seqno = first_seqno + len(normalized)
            entries = [
                Entry(key, value, first_seqno + offset, kind, stamp)
                for offset, (kind, key, value) in enumerate(normalized)
            ]
            put_count = sum(
                1 for kind, _, _ in normalized if kind is EntryKind.PUT
            )
            if put_count:
                self.stats.incr("puts", put_count)
            if put_count != len(normalized):
                self.stats.incr("deletes", len(normalized) - put_count)
            self.stats.incr(
                "user_bytes_written", sum(entry.size for entry in entries)
            )
            if self._background is not None:
                self._background.buffer_entries(entries)
                return
            started_us = self.disk.now_us
            self._active_wal.append_batch(entries)
            for entry in entries:
                self._insert_active(entry)
            if self._active.size_bytes >= self.config.buffer_size_bytes:
                self._rotate_active()
            while len(self._immutable) >= self.config.num_buffers:
                self._flush_oldest()
            # One latency sample per batch: the batch is one commit.
            self.stats.record_write_latency(self.disk.now_us - started_us)

    @staticmethod
    def _normalize_batch(
        ops: List[Tuple[str, str, Optional[str]]],
    ) -> List[Tuple[EntryKind, str, Optional[str]]]:
        """Validate a batch up front; a malformed op raises ``ValueError``
        before anything is applied."""
        normalized: List[Tuple[EntryKind, str, Optional[str]]] = []
        for op, key, value in ops:
            if not key:
                raise ValueError("keys must be non-empty")
            if op == "put":
                if value is None:
                    raise ValueError("put ops need a value")
                normalized.append((EntryKind.PUT, key, value))
            elif op == "delete":
                normalized.append((EntryKind.DELETE, key, None))
            else:
                raise ValueError(f"unknown batch op {op!r}")
        return normalized

    # ------------------------------------------------------------------
    # two-phase commit participant (cross-shard write_batch)
    # ------------------------------------------------------------------

    def txn_prepare(
        self, txn_id: int, ops: List[Tuple[str, str, Optional[str]]]
    ) -> None:
        """Phase one: durably journal a sub-batch without applying it.

        Claims consecutive seqnos and writes a PREPARE record
        (:meth:`~repro.core.wal.WriteAheadLog.append_prepare`); nothing
        enters the memtable and no commit hook fires until the
        coordinator decides. On success the call **keeps the write mutex
        held** — the same thread must settle the transaction with
        :meth:`txn_commit` or :meth:`txn_abort` (the mutex is reentrant,
        not transferable). Holding it across the window keeps the
        active segment from rotating away from its prepared record and
        blocks conflicting writers, which is what makes the decision
        point atomic store-wide. On failure the mutex is released and
        nothing was acknowledged.
        """
        normalized = self._normalize_batch(ops)
        if not normalized:
            raise ValueError("transactional sub-batch must be non-empty")
        self._before_write()
        self._write_mutex.acquire()
        try:
            self._check_open()
            stamp = self.disk.now_us
            first_seqno = self._next_seqno
            self._next_seqno = first_seqno + len(normalized)
            entries = [
                Entry(key, value, first_seqno + offset, kind, stamp)
                for offset, (kind, key, value) in enumerate(normalized)
            ]
            self._active_wal.append_prepare(txn_id, entries)
            self._pending_txns[txn_id] = entries
        except BaseException:
            self._write_mutex.release()
            raise

    def txn_commit(self, txn_id: int) -> None:
        """Phase two, commit side: apply the prepared group.

        The coordinator's COMMIT decision is already durable, so this
        mirrors exactly what :meth:`write_batch` would have done after
        its WAL sync — acknowledge the group (commit hook included),
        insert into the buffer, honor rotation/flush triggers — and then
        releases the write mutex taken by :meth:`txn_prepare`.
        """
        try:
            entries = self._pending_txns.pop(txn_id)
            started_us = self.disk.now_us
            self._active_wal.commit_prepared(txn_id)
            put_count = sum(
                1 for entry in entries if entry.kind is EntryKind.PUT
            )
            if put_count:
                self.stats.incr("puts", put_count)
            if put_count != len(entries):
                self.stats.incr("deletes", len(entries) - put_count)
            self.stats.incr(
                "user_bytes_written", sum(entry.size for entry in entries)
            )
            for entry in entries:
                self._insert_active(entry)
            if self._active.size_bytes >= self.config.buffer_size_bytes:
                if self._background is not None:
                    self._background.rotate()
                else:
                    self._rotate_active()
            if self._background is None:
                while len(self._immutable) >= self.config.num_buffers:
                    self._flush_oldest()
                self.stats.record_write_latency(
                    self.disk.now_us - started_us
                )
        finally:
            self._write_mutex.release()

    def txn_abort(self, txn_id: int) -> None:
        """Phase two, abort side: drop the prepared group unapplied.

        The PREPARE record stays in the segment; replay rolls it back
        for lack of a commit decision. Releases the write mutex taken by
        :meth:`txn_prepare`. The claimed seqnos are simply burned.
        """
        try:
            self._pending_txns.pop(txn_id, None)
            self._active_wal.abort_prepared(txn_id)
        finally:
            self._write_mutex.release()

    def delete_range(self, lo: str, hi: str) -> None:
        """Logically delete every key in ``[lo, hi)`` (§2.3.3).

        Implemented as a range tombstone: an O(1) write that shadows all
        older versions of covered keys; the covered data is garbage
        collected by later compactions (bounded by the Lethe TTL when
        configured, since range-tombstone ages feed the same trigger).
        """
        if not lo or hi <= lo:
            raise ValueError("delete_range needs non-empty lo < hi")
        self._before_write()
        with self._write_mutex:
            seqno = self._claim_seqno()
            tombstone = RangeTombstone(lo, hi, seqno, self.disk.now_us)
            # Range deletes are journaled like any write (value = end key).
            self._active_wal.append(
                Entry(lo, hi, seqno, EntryKind.RANGE_DELETE, self.disk.now_us)
            )
            self._active_tombstones.append(tombstone)
            self.stats.incr("range_deletes")
            self.stats.incr("user_bytes_written", tombstone.size)

    def get(self, key: str, at: Optional[object] = None) -> Optional[str]:
        """Point lookup: the most recent value of ``key``, or ``None``.

        Traverses buffer → Level 0 → deeper levels, newest run first within
        each level, terminating at the first base entry (§2.1.2, "Get").
        One key digest is computed lazily and shared by every Bloom filter
        probed (hash sharing, §2.1.3). Along the way the lookup tracks the
        newest covering range tombstone (free metadata checks) and collects
        merge operands until their base value is reached.

        ``at=`` (a :class:`~repro.api.Snapshot`, its token, or a raw
        seqno) answers as of that snapshot instead of the latest state:
        versions and tombstones newer than the snapshot are invisible,
        and versions an overwrite dropped while the snapshot was open are
        read from the pin buffer. A snapshot below the expiry floor
        raises :class:`~repro.errors.SnapshotExpiredError`.
        """
        self._check_open()
        started_us = self._clock_us()
        self.stats.incr("gets")
        if at is None:
            value = self._lookup_resolved(key)
        else:
            value = self._read_at(key, self._resolve_at(at))
        self.stats.record_read_latency(self._clock_us() - started_us)
        if value is None:
            return None
        self.stats.incr("gets_found")
        return value

    def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        *,
        at: Optional[object] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Range lookup: latest versions of all keys in ``[lo, hi)``.

        Merges one iterator per buffer and per sorted run (§2.1.2, "Scan"),
        returning only the newest visible version of each key. ``limit``
        (when given) caps the number of pairs returned — counted after
        tombstone resolution, so the caller always gets the first ``limit``
        *live* keys of the range — and stops the merge early, which is the
        point: a paginated reader does not pay for the whole range.

        ``at=`` answers as of a snapshot: versions and tombstones newer
        than it are invisible and pinned pre-overwrite versions fill the
        gaps (see :meth:`get`). ``allow_partial=True`` is accepted for
        protocol uniformity — a single tree has one routing unit, so the
        result is a complete :class:`~repro.api.PartialScanResult` with
        nothing skipped.
        """
        self._check_open()
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None)")
        started_us = self._clock_us()
        self.stats.incr("scans")
        at_seq = None if at is None else self._resolve_at(at)
        if at_seq is not None:
            self._check_snapshot_floor(at_seq)
        if limit == 0:
            self.stats.record_read_latency(self._clock_us() - started_us)
            return self._scan_result([], allow_partial)
        ctx = ReadContext(
            self.disk, self.cache, self.heat, self.stats, cause="scan"
        )
        with self._manifest():
            sources: List[Iterator[Entry]] = [self._active.scan(lo, hi)]
            for buffer in reversed(self._immutable):
                sources.append(buffer.memtable.scan(lo, hi))
            run_lists = [
                list(level.iter_runs_newest_first()) for level in self.levels
            ]
            tombstones = [
                t for t in self.all_range_tombstones() if t.overlaps(lo, hi)
            ]
        if at_seq is not None:
            tombstones = [t for t in tombstones if t.seqno <= at_seq]
            sources.append(self._pinned_source(lo, hi, at_seq))
        for runs in run_lists:
            for run in runs:
                sources.append(run.iter_range(lo, hi, ctx))
        results: List[Tuple[str, str]] = []
        for key, versions in iter_all_versions(sources):
            cover_seqno = max_covering_seqno(tombstones, key)
            if at_seq is not None:
                versions = sorted(
                    (v for v in versions if v.seqno <= at_seq),
                    key=lambda entry: -entry.seqno,
                )
            live = [v for v in versions if v.seqno > cover_seqno]
            value = self._resolve_versions(key, live)
            if value is not None:
                results.append((key, value))
                if limit is not None and len(results) >= limit:
                    break
        self.stats.record_read_latency(self._clock_us() - started_us)
        return self._scan_result(results, allow_partial)

    @staticmethod
    def _scan_result(
        pairs: List[Tuple[str, str]], allow_partial: bool
    ) -> List[Tuple[str, str]]:
        if not allow_partial:
            return pairs
        from ..api import PartialScanResult

        return PartialScanResult(pairs)

    def _resolve_versions(
        self, key: str, versions: List[Entry]
    ) -> Optional[str]:
        """Visible value of a newest-first version list (scan resolution)."""
        operands: List[str] = []
        base: Optional[Entry] = None
        for version in versions:
            if version.kind is EntryKind.MERGE:
                operands.append(version.value)  # type: ignore[arg-type]
                continue
            base = version
            break
        if operands:
            assert self.merge_operator is not None
            base_value = (
                base.value
                if base is not None and base.kind is EntryKind.PUT
                else None
            )
            return self.merge_operator.full_merge(
                key, base_value, list(reversed(operands))
            )
        if base is None or base.is_tombstone:
            return None
        return base.value

    def close(self) -> None:
        """Release WAL file handles. Further operations raise.

        In background mode, first drains every rotated buffer and pending
        compaction, then joins the workers; a worker failure is re-raised
        as :class:`~repro.errors.BackgroundError` after cleanup finishes.
        The active buffer is *not* flushed (same as sync mode) — its WAL
        segment survives for :meth:`recover`.
        """
        if self._closed:
            return
        background_error: Optional[BackgroundError] = None
        if self._background is not None:
            try:
                self._background.drain()
            except BackgroundError as exc:
                background_error = exc
            finally:
                self._background.stop()
        self._active_wal.close()
        for buffer in self._immutable:
            buffer.wal.close()
        self._closed = True
        if background_error is not None:
            raise background_error

    def kill(self) -> None:
        """Abandon the tree as a process crash would. Idempotent.

        No drain, no flush, no error propagation: background workers are
        told to stop, file handles are released (Python cannot safely
        leak them), and *no logical state is persisted* — the WAL files
        are line-buffered, so exactly the records already written survive.
        Recovery must work from what is on disk. This is the
        crash-consistency harness's "pull the plug" primitive.
        """
        if self._closed:
            return
        self._closed = True
        if self._background is not None:
            try:
                self._background.stop()
            except Exception:
                pass
        try:
            self._active_wal.close()
        except Exception:
            pass
        for buffer in self._immutable:
            try:
                buffer.wal.close()
            except Exception:
                pass

    def background_error(self) -> Optional[BaseException]:
        """The first background-worker failure, or ``None``.

        Non-raising health probe: lets a sharded store poll for dead
        workers without tripping the :class:`BackgroundError` contract.
        """
        if self._background is None:
            return None
        return self._background.pool.first_error

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internal operations (§2.1.2): flush and compaction
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Force the active buffer to disk (tests/benchmarks convenience).

        In background mode this rotates the active buffer and blocks until
        the flush workers have installed every rotated buffer in Level 0.
        """
        self._check_open()
        if self._background is not None:
            self._background.check_error()
            with self._write_mutex:
                self._background.rotate()
            self._background.wait_for_flushes()
            return
        self._rotate_active()
        while self._immutable:
            self._flush_oldest()

    def compact_all(self) -> None:
        """Major compaction: push every level's data to the bottom.

        In background mode the workers are first drained, then paused, so
        the manual plan/execute loop below owns the tree exclusively.
        """
        self._check_open()
        if self._background is not None:
            self._background.drain()
            self._background.pool.pause()
            try:
                with self._background.manifest_lock:
                    self._compact_all_levels()
            finally:
                self._background.pool.resume()
            return
        self._compact_all_levels()

    def _compact_all_levels(self) -> None:
        for index in range(len(self.levels)):
            while True:
                plan = self.planner.plan_manual(self.levels, index)
                if plan is None:
                    break
                self._ensure_level(plan.job.target_level)
                self.executor.execute(
                    plan.job, self.levels, plan.bottommost, plan.target_leveled
                )
                self._note_version_gc()
            self._run_compactions()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def seqno(self) -> int:
        """Next sequence number to be assigned."""
        return self._next_seqno

    # ------------------------------------------------------------------
    # snapshots (MVCC read points)
    # ------------------------------------------------------------------

    def snapshot(self) -> "object":
        """Capture a consistent read point for this tree.

        Returns a :class:`~repro.api.Snapshot` whose single routing unit
        ``0`` maps to the highest seqno assigned so far; ``get``/``scan``
        with ``at=`` that handle answer as of this instant. Release the
        handle (``close()``/``with``) so the tree can stop pinning
        overwritten versions.
        """
        from ..api import Snapshot

        seq = self.snapshot_pin()
        return Snapshot({0: seq}, release=lambda: self.snapshot_release(seq))

    def snapshot_pin(self) -> int:
        """Pin the current tip seqno and return it (refcounted).

        Building block for store-level snapshots: an aggregating store
        pins every shard and assembles one multi-unit handle. While any
        pin is live, in-buffer overwrites stash the version they would
        drop (bounded by the pin cap — overflow expires, never lies).
        """
        self._check_open()
        with self._write_mutex:
            seq = self._next_seqno - 1
            self._snapshots[seq] = self._snapshots.get(seq, 0) + 1
            return seq

    def snapshot_release(self, seq: int) -> None:
        """Drop one reference to a pinned seqno; releasing the last live
        pin discards the pinned-version buffer."""
        with self._write_mutex:
            count = self._snapshots.get(seq, 0)
            if count <= 1:
                self._snapshots.pop(seq, None)
            else:
                self._snapshots[seq] = count - 1
            if not self._snapshots:
                self._pinned.clear()

    def _resolve_at(self, at: object) -> int:
        """Accept a Snapshot handle, its token, or a raw seqno."""
        if isinstance(at, bool):
            raise TypeError("at= must be a Snapshot, token string, or seqno")
        if isinstance(at, int):
            return at
        from ..api import Snapshot

        return Snapshot.coerce(at).seqno_for(0)

    def _check_snapshot_floor(self, at_seq: int) -> None:
        if at_seq < self._snap_floor:
            raise SnapshotExpiredError(
                f"snapshot at seqno {at_seq} expired: versions below "
                f"{self._snap_floor} may have been garbage-collected",
                seqno=at_seq,
            )

    def _insert_active(self, entry: Entry) -> None:
        """Insert into the active buffer, first pinning the version the
        insert would drop if an open snapshot still needs it. Caller
        holds the write mutex. The snapshot check is one falsy-dict test
        when no snapshot is open — the common case stays free."""
        if self._snapshots:
            self._maybe_pin(entry)
        self._active.insert(entry)

    def _maybe_pin(self, entry: Entry) -> None:
        old = self._active.get(entry.key)
        if old is None or old.kind is EntryKind.MERGE:
            # Nothing dropped, or an eager-merge operand stack (snapshots
            # over merge operators are documented as unsupported).
            return
        if max(self._snapshots) < old.seqno:
            return  # no open snapshot can see the dropped version
        if len(self._pinned) >= _SNAPSHOT_PIN_CAP:
            # Pin budget exhausted: expire snapshots below this write
            # instead of silently losing their view.
            self._snap_floor = max(self._snap_floor, entry.seqno)
            return
        self._pinned.append(old)

    def _pinned_source(
        self, lo: str, hi: str, at_seq: int
    ) -> Iterator[Entry]:
        """Pinned versions in ``[lo, hi)`` visible at ``at_seq``, key
        sorted, newest surviving version per key (a scan source)."""
        with self._write_mutex:
            best: Dict[str, Entry] = {}
            for entry in self._pinned:
                if lo <= entry.key < hi and entry.seqno <= at_seq:
                    seen = best.get(entry.key)
                    if seen is None or entry.seqno > seen.seqno:
                        best[entry.key] = entry
        return iter(sorted(best.values(), key=lambda entry: entry.key))

    def _read_at(self, key: str, at_seq: int) -> Optional[str]:
        """Point lookup as of a snapshot.

        Collects *every* stored version of the key at or below the
        snapshot — one probe per component plus the pin buffer — rather
        than stopping at the first base entry: the newest stored version
        may postdate the snapshot. Correctness over probe count; at-reads
        are not the hot path.
        """
        self._check_snapshot_floor(at_seq)
        ctx = ReadContext(
            self.disk, self.cache, self.heat, self.stats, cause="get"
        )
        digest = key_digest(key) if self.config.filter_bits_per_key else None
        shadow_seqno = -1
        versions: List[Entry] = []
        for tombstones, getter, counts_as_run in self._lookup_units(
            key, ctx, digest
        ):
            visible = [t for t in tombstones if t.seqno <= at_seq]
            shadow_seqno = max(
                shadow_seqno, max_covering_seqno(visible, key)
            )
            if counts_as_run:
                self.stats.incr("runs_probed")
            entry = getter()
            if entry is not None and entry.seqno <= at_seq:
                versions.append(entry)
        with self._write_mutex:
            for entry in self._pinned:
                if entry.key == key and entry.seqno <= at_seq:
                    versions.append(entry)
        versions.sort(key=lambda entry: -entry.seqno)
        live = [v for v in versions if v.seqno > shadow_seqno]
        return self._resolve_versions(key, live)

    def backpressure(self) -> Dict[str, object]:
        """Non-blocking admission-control snapshot for serving layers.

        Returns a dict with ``state`` (``"ok"``, ``"slowdown"``, or
        ``"stop"``) plus the raw quantities behind it (Level-0 run count,
        immutable-queue depth, and the two triggers). In background mode
        the state mirrors exactly what :meth:`put` would experience —
        ``"stop"`` means a write issued now would block until workers
        drain — so a server can shed load *before* tying up a thread.
        The synchronous engine never blocks writers (it charges
        maintenance inline), so its state is always ``"ok"``.
        """
        if self._background is not None:
            return self._background.backpressure_state()
        with self._manifest():
            l0_runs = self.levels[0].run_count if self.levels else 0
            immutable = len(self._immutable)
        return {
            "state": "ok",
            "level0_runs": l0_runs,
            "immutable_buffers": immutable,
            "slowdown_trigger": self.config.level0_run_limit * 2,
            "stop_trigger": self.config.level0_run_limit * 4,
        }

    def total_disk_bytes(self) -> int:
        """Payload bytes currently on disk across all levels."""
        with self._manifest():
            return sum(level.data_bytes for level in self.levels)

    def total_run_count(self) -> int:
        """Number of sorted runs on disk (the quantity compaction bounds)."""
        with self._manifest():
            return sum(level.run_count for level in self.levels)

    def memory_footprint_bits(self) -> int:
        """RUM memory: buffers + filters + fence pointers, in bits."""
        with self._manifest():
            bits = 8 * self._active.size_bytes
            bits += sum(
                8 * buffer.memtable.size_bytes for buffer in self._immutable
            )
            for level in self.levels:
                for run in level.runs:
                    for table in run.tables:
                        if table.bloom is not None:
                            bits += table.bloom.memory_bits
                        if table.fence is not None:
                            bits += table.fence.memory_bits
            return bits

    def level_summary(self) -> List[Dict[str, object]]:
        """One dict per level: runs, files, bytes, capacity, tombstones."""
        with self._manifest():
            return [
                {
                    "level": level.index,
                    "runs": level.run_count,
                    "files": sum(len(run.tables) for run in level.runs),
                    "bytes": level.data_bytes,
                    "capacity": level.capacity_bytes,
                    "tombstones": level.tombstone_count,
                }
                for level in self.levels
            ]

    def space_breakdown(self) -> Dict[str, int]:
        """Live vs. logically-invalidated bytes on disk (space amp, §2.3).

        Walks every component without charging I/O (an analysis pass, not
        an engine operation). ``live_bytes`` counts materialized PUT
        versions; pending MERGE operand stacks and range-tombstone
        metadata count toward ``total_bytes`` only, so space amplification
        reads slightly conservative on merge-heavy workloads.
        """
        newest: Dict[str, Entry] = {}
        total_bytes = 0
        for source in self._all_components():
            for entry in source:
                total_bytes += entry.size
                seen = newest.get(entry.key)
                if seen is None or entry.seqno > seen.seqno:
                    newest[entry.key] = entry
        live_bytes = sum(
            entry.size
            for entry in newest.values()
            if entry.kind is EntryKind.PUT
        )
        return {
            "total_bytes": total_bytes,
            "live_bytes": live_bytes,
            "dead_bytes": total_bytes - live_bytes,
        }

    def space_amplification(self) -> float:
        """On-disk bytes per live byte (1.0 is perfect)."""
        breakdown = self.space_breakdown()
        if breakdown["live_bytes"] == 0:
            return 0.0
        disk_bytes = self.total_disk_bytes()
        return disk_bytes / breakdown["live_bytes"] if disk_bytes else 0.0

    def write_amplification(self) -> float:
        """Device bytes written (flush + compaction + WAL) per user byte."""
        return self.stats.write_amplification(self.disk.counters.bytes_written)

    def verify_invariants(self) -> None:
        """Assert the structural invariants of DESIGN.md §4.

        Used by the property-based tests; raises ``AssertionError`` with a
        diagnostic message on any violation.
        """
        last = last_data_level(self.levels)
        for level in self.levels:
            if level.index > 0:
                allowed = self.layout.max_runs(level.index, last)
                assert level.run_count <= max(1, allowed), (
                    f"level {level.index} holds {level.run_count} runs, "
                    f"layout allows {allowed}"
                )
        seen_seqno: Dict[str, int] = {}
        for source in self._all_components():
            source_seen: Dict[str, int] = {}
            for entry in source:
                assert entry.key not in source_seen, (
                    f"duplicate key {entry.key!r} within one component"
                )
                source_seen[entry.key] = entry.seqno
            for key, seqno in source_seen.items():
                if key in seen_seqno:
                    assert seqno < seen_seqno[key], (
                        f"LSM invariant violated for {key!r}: deeper seqno "
                        f"{seqno} >= shallower {seen_seqno[key]}"
                    )
                else:
                    seen_seqno[key] = seqno

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        config: Optional[LSMConfig],
        wal_dir: str,
        disk: Optional[SimulatedDisk] = None,
        merge_operator: Optional[MergeOperator] = None,
        committed_txns: Optional[set] = None,
    ) -> "LSMTree":
        """Rebuild the memory state from WAL segments after a crash.

        Only buffered (unflushed) entries live in the WAL; a full restart
        additionally reloads SSTables via
        :mod:`repro.storage.persistence`. Entries keep their original
        sequence numbers so recovery is idempotent.

        ``committed_txns`` is the committed-transaction id set recovered
        from the store's coordinator decision log: prepared two-phase
        groups in it are rolled forward, all others rolled back (see
        :meth:`~repro.core.wal.WriteAheadLog.replay`).

        Crash-safe ordering: every replayed entry is re-journaled into a
        *fresh* segment (numbered above all existing ones) before any old
        segment is deleted, so a crash at any point during recovery —
        including mid-deletion, see the ``wal.recover.before_delete``
        failpoint — leaves a WAL set that replays to the same state.
        """
        segments = sorted(
            name
            for name in os.listdir(wal_dir)
            if name.startswith("wal.") and name.endswith(".log")
        )
        entries: List[Entry] = []
        for name in segments:
            entries.extend(
                WriteAheadLog.replay(
                    os.path.join(wal_dir, name), committed_txns
                )
            )
        tree = cls(
            config, disk=disk, wal_dir=None, merge_operator=merge_operator
        )
        tree.attach_wal_dir(wal_dir)
        for entry in entries:
            tree._ingest_recovered(entry)
        for name in segments:
            path = os.path.join(wal_dir, name)
            fault_point("wal.recover.before_delete", path=path)
            if os.path.exists(path):
                os.remove(path)
        return tree

    def attach_wal_dir(self, wal_dir: str) -> None:
        """Start journaling into ``wal_dir`` mid-life.

        New segments are numbered above every segment already present, so
        the directory's existing files (pre-crash segments a recovery is
        still consuming, or preserved flushed segments) are never
        appended to or clobbered. Entries already buffered in the active
        memtable are re-journaled into the first new segment.
        """
        with self._write_mutex:
            existing = [
                int(name[4:-4])
                for name in os.listdir(wal_dir)
                if name.startswith("wal.")
                and name.endswith(".log")
                and name[4:-4].isdigit()
            ]
            old_wal = self._active_wal
            self._wal_dir = wal_dir
            self._wal_segment_id = max(existing, default=-1) + 1
            self._active_wal = self._new_wal_segment()
            pending = old_wal.pending_entries
            if pending:
                self._active_wal.append_batch(pending)
            old_wal.close()

    # ------------------------------------------------------------------
    # replication taps
    # ------------------------------------------------------------------

    def set_wal_commit_hook(self, hook: Optional[CommitHook]) -> None:
        """Install (or clear) the post-commit WAL tap.

        The hook fires with the entries of each acknowledged commit group
        — after the group's WAL sync succeeded — and is carried across
        segment rotations. This is how a replicated store ships committed
        records off a primary; see
        :class:`~repro.core.wal.WriteAheadLog` for the exact contract.
        Taking the write mutex orders the install against in-flight
        writers: every group committed after this returns is observed.
        """
        with self._write_mutex:
            self._wal_commit_hook = hook
            self._active_wal.on_commit = hook

    def apply_replicated(self, entries: List[Entry]) -> None:
        """Apply one shipped commit group to this tree as a replica.

        Entries keep the sequence numbers the primary assigned (like
        :meth:`_ingest_recovered`), and the whole group is journaled with
        one :meth:`~repro.core.wal.WriteAheadLog.append_batch` so the
        replica's own recovery preserves the group's atomicity: a torn
        tail drops the group whole, never half of it.
        """
        if not entries:
            return
        self._before_write()
        with self._write_mutex:
            self._check_open()
            for entry in entries:
                self._next_seqno = max(self._next_seqno, entry.seqno + 1)
                self.stats.incr("user_bytes_written", entry.size)
            self._active_wal.append_batch(entries)
            for entry in entries:
                if entry.kind is EntryKind.RANGE_DELETE:
                    self._active_tombstones.append(
                        RangeTombstone(
                            entry.key,
                            entry.value,  # type: ignore[arg-type]
                            entry.seqno,
                            entry.stamp_us,
                        )
                    )
                else:
                    self._insert_active(entry)
            if self._active.size_bytes < self.config.buffer_size_bytes:
                return
            if self._background is not None:
                self._background.rotate()
                return
            self._rotate_active()
            while len(self._immutable) >= self.config.num_buffers:
                self._flush_oldest()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("tree is closed")

    def _manifest(self) -> ContextManager:
        """The manifest lock in background mode; a no-op context in sync.

        Guards the tree's structural state: the active-buffer reference,
        the immutable queue, and every level's run list. Reads hold it only
        long enough to snapshot list references (runs and SSTables are
        immutable once built), giving version-style snapshot isolation.
        """
        if self._background is not None:
            return self._background.manifest_lock
        return nullcontext()

    def _before_write(self) -> None:
        """Background mode: surface worker errors, apply backpressure."""
        if self._background is not None:
            self._background.before_write()

    def _clock_us(self) -> float:
        """Clock for client-visible latencies.

        Sync mode uses the simulated disk clock (the write is charged its
        flush/compaction time). In background mode the simulated clock
        advances concurrently on worker threads, so client latencies are
        wall-clock instead.
        """
        if self._background is not None:
            return time.perf_counter() * 1e6
        return self.disk.now_us

    def _make_buffer(self) -> MemTable:
        """A fresh active memtable, lock-wrapped in background mode."""
        memtable = make_memtable(
            self.config.memtable_kind,
            self.config.seed + self._wal_segment_id,
        )
        if self.config.background_mode:
            return LockedMemTable(memtable)
        return memtable

    def _claim_seqno(self) -> int:
        self._check_open()
        seqno = self._next_seqno
        self._next_seqno += 1
        return seqno

    def _new_wal_segment(self) -> WriteAheadLog:
        path = None
        if self._wal_dir is not None:
            path = os.path.join(
                self._wal_dir, f"wal.{self._wal_segment_id:06d}.log"
            )
        self._wal_segment_id += 1
        return WriteAheadLog(
            self.disk,
            path,
            fsync=self.config.wal_fsync,
            on_commit=self._wal_commit_hook,
        )

    def _write(self, entry: Entry) -> None:
        """Apply one journaled write; caller holds the write mutex."""
        self.stats.incr("user_bytes_written", entry.size)
        if self._background is not None:
            self._background.buffer_entry(entry)
            return
        started_us = self.disk.now_us
        self._active_wal.append(entry)
        self._insert_active(entry)
        if self._active.size_bytes >= self.config.buffer_size_bytes:
            self._rotate_active()
        if len(self._immutable) >= self.config.num_buffers:
            self._flush_oldest()
        self.stats.record_write_latency(self.disk.now_us - started_us)

    def _ingest_recovered(self, entry: Entry) -> None:
        """Re-buffer one replayed entry, preserving its sequence number."""
        self._before_write()
        with self._write_mutex:
            self._next_seqno = max(self._next_seqno, entry.seqno + 1)
            self.stats.incr("user_bytes_written", entry.size)
            self._active_wal.append(entry)
            if entry.kind is EntryKind.RANGE_DELETE:
                self._active_tombstones.append(
                    RangeTombstone(
                        entry.key,
                        entry.value,  # type: ignore[arg-type]
                        entry.seqno,
                        entry.stamp_us,
                    )
                )
                return
            self._insert_active(entry)
            if self._active.size_bytes < self.config.buffer_size_bytes:
                return
            if self._background is not None:
                self._background.rotate()
                return
            self._rotate_active()
            if len(self._immutable) >= self.config.num_buffers:
                self._flush_oldest()

    def _rotate_active(self) -> None:
        """Swap in a fresh buffer so ingestion never edits a flushing one.

        Background mode callers must hold both the write mutex and the
        manifest lock (:meth:`BackgroundCoordinator.rotate` does).
        """
        if len(self._active) == 0 and not self._active_tombstones:
            return
        self._immutable.append(
            ImmutableBuffer(
                self._active,
                self._active_wal,
                self._active_tombstones,
                self._rotation_seq,
            )
        )
        self._rotation_seq += 1
        self._active = self._make_buffer()
        self._active_wal = self._new_wal_segment()
        self._active_tombstones = []

    def _flush_oldest(self) -> None:
        """Flush the oldest immutable buffer into a new Level-0 run."""
        buffer = self._immutable.pop(0)
        entries = buffer.memtable.entries()
        tombstones = buffer.tombstones
        if entries or tombstones:
            level0 = self._ensure_level(0)
            stalled = level0.run_count >= self.config.level0_run_limit
            stall_started_us = self.disk.now_us
            if stalled:
                # Ingestion must wait for Level 0 to drain (§2.2.3): the
                # synchronous compactions below are the stall.
                self.stats.incr("stall_events")
                self._run_compactions()
                self.stats.incr(
                    "stall_us", self.disk.now_us - stall_started_us
                )
            fault_point("flush.build", scope=f"rot-{buffer.seq}")
            tables = self.executor.build_tables(
                entries, cause="flush", range_tombstones=dedupe(tombstones)
            )
            fault_point("flush.install", scope=f"rot-{buffer.seq}")
            self._ensure_level(0).add_run_newest(SortedRun(tables))
            self.stats.incr("flushes")
            self.stats.incr(
                "flushed_bytes", sum(table.data_bytes for table in tables)
            )
        buffer.wal.close()
        self._delete_wal_file(buffer.wal)
        self._run_compactions()

    def _delete_wal_file(self, wal: WriteAheadLog) -> None:
        if self.config.wal_preserve_segments:
            return  # kept until a checkpoint prunes it (wal_preserve_segments)
        path = getattr(wal, "_path", None)
        if path is not None and os.path.exists(path):
            fault_point("flush.wal_delete", path=path)
            os.remove(path)

    def flushed_wal_segments(self) -> List[str]:
        """Segment files in ``wal_dir`` not backing a live buffer.

        Non-empty only with ``wal_preserve_segments`` (or mid-recovery):
        these are the files a checkpoint may prune once its manifest
        covers their entries.
        """
        if self._wal_dir is None:
            return []
        with self._write_mutex:
            live = {getattr(self._active_wal, "_path", None)}
            for buffer in self._immutable:
                live.add(getattr(buffer.wal, "_path", None))
        flushed = []
        for name in sorted(os.listdir(self._wal_dir)):
            if name.startswith("wal.") and name.endswith(".log"):
                path = os.path.join(self._wal_dir, name)
                if path not in live:
                    flushed.append(path)
        return flushed

    def _ensure_level(self, index: int) -> Level:
        while len(self.levels) <= index:
            depth = len(self.levels)
            self.levels.append(
                Level(depth, self.config.level_capacity_bytes(depth))
            )
        return self.levels[index]

    def _run_compactions(self) -> None:
        """Apply compactions until the tree satisfies its layout (§2.1.2)."""
        while True:
            plan = self.planner.plan(self.levels, self.disk.now_us)
            if plan is None:
                return
            fault_point("compact.step", scope=f"L{plan.job.source_level}")
            self._ensure_level(plan.job.target_level)
            self.executor.execute(
                plan.job, self.levels, plan.bottommost, plan.target_leveled
            )
            self._note_version_gc()

    def _note_version_gc(self) -> None:
        """A compaction just ran and may have merged away superseded
        versions; raise the snapshot expiry floor to the current tip so
        older ``at=`` reads expire instead of answering from a
        half-merged history. (Conservative: a move-only compaction also
        bumps — at-reads trade availability for never being wrong.)"""
        self._snap_floor = max(self._snap_floor, self._next_seqno - 1)

    def _monkey_bits_for_level(self, level_index: int) -> float:
        """Monkey-optimal bits/key for tables landing at ``level_index``.

        Re-derived from the tree's current shape each time a table is
        built, so the allocation adapts as the tree deepens (§2.1.3).
        Empty or future levels are estimated geometrically.
        """
        with self._manifest():
            entry_counts = [level.entry_count for level in self.levels]
        depth = max(level_index + 1, len(entry_counts), 2)
        counts: List[int] = []
        previous = max(
            1, self.config.buffer_size_bytes // 64
        )  # rough entries-per-buffer estimate
        for index in range(depth):
            actual = (
                entry_counts[index] if index < len(entry_counts) else 0
            )
            estimate = previous * (
                self.config.size_ratio if index > 0 else 1
            )
            counts.append(max(actual, estimate, 1))
            previous = counts[-1]
        schedule = monkey_bits_per_key(counts, self.config.filter_bits_per_key)
        return schedule[level_index]

    def _lookup_resolved(self, key: str) -> Optional[str]:
        """Full read-path resolution: tombstones, range shadows, merges.

        Walks components newest-first; a covering range tombstone seen at
        any component shadows every strictly-older version below (the LSM
        invariant orders components by recency per key). The first base
        entry (PUT or point tombstone) ends the walk; MERGE operands are
        collected along the way and folded at the end.
        """
        ctx = ReadContext(
            self.disk, self.cache, self.heat, self.stats, cause="get"
        )
        digest = key_digest(key) if self.config.filter_bits_per_key else None

        shadow_seqno = -1
        operand_entries: List[Entry] = []
        base: Optional[Entry] = None

        for tombstones, getter, counts_as_run in self._lookup_units(
            key, ctx, digest
        ):
            shadow_seqno = max(
                shadow_seqno, max_covering_seqno(tombstones, key)
            )
            if counts_as_run:
                self.stats.incr("runs_probed")
            entry = getter()
            if entry is None:
                continue
            if entry.seqno < shadow_seqno:
                break  # the newest version of this key is range-deleted
            if entry.kind is EntryKind.MERGE:
                operand_entries.append(entry)
                continue
            base = entry
            break

        live_operands = [
            entry.value
            for entry in operand_entries
            if entry.seqno > shadow_seqno
        ]
        if live_operands:
            assert self.merge_operator is not None  # enforced at merge()
            base_value = (
                base.value
                if base is not None and base.kind is EntryKind.PUT
                else None
            )
            return self.merge_operator.full_merge(
                key, base_value, list(reversed(live_operands))
            )
        if base is None or base.is_tombstone:
            return None
        return base.value

    def _lookup_units(self, key, ctx, digest):
        """Yield (range tombstones, point getter, counts-as-run) per
        component, newest first.

        The component list is snapshotted under the manifest lock, then
        probed lock-free: runs and their SSTables are immutable, and a
        rotated memtable is frozen, so the snapshot stays valid however
        long the walk takes (a compaction finishing mid-walk only leaves
        the snapshot reading superseded-but-consistent runs).
        """
        with self._manifest():
            active = self._active
            active_tombstones = list(self._active_tombstones)
            immutables = [
                (buffer.memtable, list(buffer.tombstones))
                for buffer in reversed(self._immutable)
            ]
            run_lists = [
                list(level.iter_runs_newest_first()) for level in self.levels
            ]
        yield (active_tombstones, lambda: active.get(key), False)
        for memtable, tombstones in immutables:
            yield (tombstones, lambda m=memtable: m.get(key), False)
        for runs in run_lists:
            for run in runs:
                yield (
                    run.range_tombstones,
                    lambda r=run: r.get(key, ctx, digest),
                    True,
                )

    def all_range_tombstones(self) -> List[RangeTombstone]:
        """Every live range tombstone, deduplicated (analysis + scans)."""
        with self._manifest():
            collected = list(self._active_tombstones)
            for buffer in self._immutable:
                collected.extend(buffer.tombstones)
            for level in self.levels:
                for run in level.runs:
                    collected.extend(run.range_tombstones)
        return dedupe(collected)

    def _all_components(self) -> Iterator[Iterator[Entry]]:
        """Every entry source, newest component first (analysis only)."""
        with self._manifest():
            memtables = [self._active] + [
                buffer.memtable for buffer in reversed(self._immutable)
            ]
            run_lists = [
                list(level.iter_runs_newest_first()) for level in self.levels
            ]
        for memtable in memtables:
            yield iter(memtable.entries())
        for runs in run_lists:
            for run in runs:
                yield run.iter_entries()
