"""A classic probabilistic skip list keyed by string.

This is the substrate for the ``skiplist`` and ``hash_skiplist`` buffer
variants (§2.2.1). It supports O(log n) expected insert/search and ordered
traversal, which is why it is the default memtable of most LSM engines: it
serves interleaved reads and writes well, unlike an unsorted vector.

The implementation is a standard Pugh skip list with randomized tower
heights; nodes store a payload object so callers can attach an
:class:`~repro.core.entry.Entry` (or anything else).

Two RocksDB-style fast paths keep the common ingest shape cheap without
changing the structure: appends past the current tail link straight off a
cached rightmost-tower array (sequential upserts skip the descent
entirely), and tower heights come from one ``getrandbits`` draw instead of
one RNG call per level.
"""

from __future__ import annotations

import random
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")

_MAX_HEIGHT = 16
_BRANCHING = 4


class _Node(Generic[V]):
    """One tower in the skip list."""

    __slots__ = ("key", "value", "nexts")

    def __init__(self, key: str, value: V, height: int) -> None:
        self.key = key
        self.value = value
        self.nexts: List[Optional["_Node[V]"]] = [None] * height


class SkipList(Generic[V]):
    """Ordered string-keyed map with expected O(log n) operations."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._head: _Node[V] = _Node("", None, _MAX_HEIGHT)  # type: ignore[arg-type]
        self._height = 1
        self._count = 0
        #: Largest-keyed node, or ``None`` while empty (append fast path).
        self._tail: Optional[_Node[V]] = None
        #: Rightmost node on every list level; the ready-made predecessor
        #: array for inserts beyond the tail.
        self._rightmost: List[_Node[V]] = [self._head] * _MAX_HEIGHT

    def __len__(self) -> int:
        return self._count

    def _random_height(self) -> int:
        # One RNG draw instead of one per level: consume the bit stream
        # two bits at a time; each 1-in-_BRANCHING (=4) pair grows the
        # tower, matching the per-level geometric distribution.
        bits = self._rng.getrandbits(2 * (_MAX_HEIGHT - 1))
        height = 1
        while height < _MAX_HEIGHT and bits & 3 == 0:
            height += 1
            bits >>= 2
        return height

    def _find_predecessors(self, key: str) -> List[_Node[V]]:
        """The rightmost node strictly before ``key`` on every list level."""
        preds: List[_Node[V]] = [self._head] * _MAX_HEIGHT
        node = self._head
        for lvl in range(self._height - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
            preds[lvl] = node
        return preds

    def insert(self, key: str, value: V) -> Optional[V]:
        """Insert or replace; returns the replaced value, if any."""
        tail = self._tail
        if tail is not None and key > tail.key:
            # Append past the tail: the rightmost towers *are* the
            # predecessors — no descent, and no equal-key check needed
            # because the key is strictly larger than every stored key.
            preds = self._rightmost
        else:
            preds = self._find_predecessors(key)
            candidate = preds[0].nexts[0]
            if candidate is not None and candidate.key == key:
                old = candidate.value
                candidate.value = value
                return old
        height = self._random_height()
        if height > self._height:
            self._height = height
        node: _Node[V] = _Node(key, value, height)
        rightmost = self._rightmost
        node_nexts = node.nexts
        for lvl in range(height):
            pred = preds[lvl]
            node_nexts[lvl] = pred.nexts[lvl]
            pred.nexts[lvl] = node
            if node_nexts[lvl] is None:
                rightmost[lvl] = node
        if node_nexts[0] is None:
            self._tail = node
        self._count += 1
        return None

    def get(self, key: str) -> Optional[V]:
        """Value stored at ``key``, or ``None``."""
        tail = self._tail
        if tail is None or key > tail.key:
            return None
        if key == tail.key:
            return tail.value
        node = self._head
        for lvl in range(self._height - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
        candidate = node.nexts[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[str, V]]:
        """All (key, value) pairs in ascending key order."""
        node = self._head.nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]

    def items_from(self, lo: str) -> Iterator[Tuple[str, V]]:
        """Pairs with key >= ``lo`` in ascending order."""
        preds = self._find_predecessors(lo)
        node = preds[0].nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]
