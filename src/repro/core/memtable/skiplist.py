"""A classic probabilistic skip list keyed by string.

This is the substrate for the ``skiplist`` and ``hash_skiplist`` buffer
variants (§2.2.1). It supports O(log n) expected insert/search and ordered
traversal, which is why it is the default memtable of most LSM engines: it
serves interleaved reads and writes well, unlike an unsorted vector.

The implementation is a standard Pugh skip list with randomized tower
heights; nodes store a payload object so callers can attach an
:class:`~repro.core.entry.Entry` (or anything else).
"""

from __future__ import annotations

import random
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")

_MAX_HEIGHT = 16
_BRANCHING = 4


class _Node(Generic[V]):
    """One tower in the skip list."""

    __slots__ = ("key", "value", "nexts")

    def __init__(self, key: str, value: V, height: int) -> None:
        self.key = key
        self.value = value
        self.nexts: List[Optional["_Node[V]"]] = [None] * height


class SkipList(Generic[V]):
    """Ordered string-keyed map with expected O(log n) operations."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._head: _Node[V] = _Node("", None, _MAX_HEIGHT)  # type: ignore[arg-type]
        self._height = 1
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_predecessors(self, key: str) -> List[_Node[V]]:
        """The rightmost node strictly before ``key`` on every list level."""
        preds: List[_Node[V]] = [self._head] * _MAX_HEIGHT
        node = self._head
        for lvl in range(self._height - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
            preds[lvl] = node
        return preds

    def insert(self, key: str, value: V) -> Optional[V]:
        """Insert or replace; returns the replaced value, if any."""
        preds = self._find_predecessors(key)
        candidate = preds[0].nexts[0]
        if candidate is not None and candidate.key == key:
            old = candidate.value
            candidate.value = value
            return old
        height = self._random_height()
        if height > self._height:
            self._height = height
        node: _Node[V] = _Node(key, value, height)
        for lvl in range(height):
            node.nexts[lvl] = preds[lvl].nexts[lvl]
            preds[lvl].nexts[lvl] = node
        self._count += 1
        return None

    def get(self, key: str) -> Optional[V]:
        """Value stored at ``key``, or ``None``."""
        node = self._head
        for lvl in range(self._height - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
        candidate = node.nexts[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[str, V]]:
        """All (key, value) pairs in ascending key order."""
        node = self._head.nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]

    def items_from(self, lo: str) -> Iterator[Tuple[str, V]]:
        """Pairs with key >= ``lo`` in ascending order."""
        preds = self._find_predecessors(lo)
        node = preds[0].nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]
