"""The four memory-buffer implementations the tutorial discusses (§2.2.1).

RocksDB exposes the memtable representation as a knob because the choice
constructs a small read-write tradeoff *inside* the buffer:

* :class:`VectorMemTable` — an append-only unsorted array. Highest ingestion
  throughput (O(1) appends, one sort at flush), but point reads degenerate
  to a reverse linear scan, so "its performance degrades in presence of
  interleaved reads".
* :class:`SkipListMemTable` — the common default; O(log n) for everything,
  "better performance for such mixed workloads".
* :class:`HashSkipListMemTable` — hash-sharded skip lists: near-O(1) point
  operations, ordered iteration requires merging the shards at flush time.
* :class:`HashLinkedListMemTable` — hash of per-bucket linked lists, the
  cheapest inserts after the vector; ordered iteration sorts at flush.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..entry import Entry
from .base import MemTable
from .skiplist import SkipList


class VectorMemTable(MemTable):
    """Append-only unsorted buffer (RocksDB's ``vector`` memtable).

    Appends are O(1). Because the vector cannot replace an older version in
    place cheaply, duplicates accumulate and the *latest* append wins; both
    point reads and flush reconcile duplicates (reads scan from the tail,
    flush keeps the highest sequence number per key).
    """

    def __init__(self) -> None:
        super().__init__()
        self._items: List[Entry] = []
        self._live: Dict[str, int] = {}

    def insert(self, entry: Entry) -> None:
        # A real vector memtable blindly appends; we additionally track live
        # counts so size accounting matches the other variants.
        previous_index = self._live.get(entry.key)
        replaced = (
            self._items[previous_index] if previous_index is not None else None
        )
        self._items.append(entry)
        self._live[entry.key] = len(self._items) - 1
        self._account_insert(entry, replaced)

    def get(self, key: str) -> Optional[Entry]:
        # Emulates the linear reverse scan a vector memtable performs; the
        # index is used only to keep tests fast while preserving semantics.
        index = self._live.get(key)
        if index is None:
            return None
        return self._items[index]

    def entries(self) -> List[Entry]:
        latest = {
            entry.key: entry
            for entry in self._items  # later appends overwrite earlier ones
        }
        return sorted(latest.values(), key=lambda entry: entry.key)

    @property
    def supports_point_reads_cheaply(self) -> bool:
        return False


class SkipListMemTable(MemTable):
    """Skip-list buffer: balanced reads and writes (the default)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._list: SkipList[Entry] = SkipList(seed=seed)

    def insert(self, entry: Entry) -> None:
        replaced = self._list.insert(entry.key, entry)
        self._account_insert(entry, replaced)

    def get(self, key: str) -> Optional[Entry]:
        return self._list.get(key)

    def entries(self) -> List[Entry]:
        return [entry for _key, entry in self._list.items()]

    @property
    def supports_point_reads_cheaply(self) -> bool:
        return True


class HashSkipListMemTable(MemTable):
    """Hash-sharded skip lists (RocksDB's ``hash_skiplist``).

    Keys are hashed into ``num_shards`` independent skip lists; point
    operations touch one small list, and flush merges the shards.
    """

    def __init__(self, num_shards: int = 16, seed: int = 0) -> None:
        super().__init__()
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._shards: List[SkipList[Entry]] = [
            SkipList(seed=seed + shard) for shard in range(num_shards)
        ]

    def _shard_for(self, key: str) -> SkipList[Entry]:
        return self._shards[hash(key) % len(self._shards)]

    def insert(self, entry: Entry) -> None:
        replaced = self._shard_for(entry.key).insert(entry.key, entry)
        self._account_insert(entry, replaced)

    def get(self, key: str) -> Optional[Entry]:
        return self._shard_for(key).get(key)

    def entries(self) -> List[Entry]:
        merged: List[Entry] = []
        for shard in self._shards:
            merged.extend(entry for _key, entry in shard.items())
        merged.sort(key=lambda entry: entry.key)
        return merged

    @property
    def supports_point_reads_cheaply(self) -> bool:
        return True


class HashLinkedListMemTable(MemTable):
    """Hash of per-bucket insertion-ordered lists (``hash_linkedlist``).

    Point operations are near-O(1); ordered iteration is the most expensive
    of the four because flush must collect and sort every bucket.
    """

    def __init__(self, num_buckets: int = 64) -> None:
        super().__init__()
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        self._buckets: List[Dict[str, Entry]] = [
            {} for _ in range(num_buckets)
        ]

    def _bucket_for(self, key: str) -> Dict[str, Entry]:
        return self._buckets[hash(key) % len(self._buckets)]

    def insert(self, entry: Entry) -> None:
        bucket = self._bucket_for(entry.key)
        replaced = bucket.get(entry.key)
        bucket[entry.key] = entry
        self._account_insert(entry, replaced)

    def get(self, key: str) -> Optional[Entry]:
        return self._bucket_for(key).get(key)

    def entries(self) -> List[Entry]:
        collected: List[Entry] = []
        for bucket in self._buckets:
            collected.extend(bucket.values())
        collected.sort(key=lambda entry: entry.key)
        return collected

    @property
    def supports_point_reads_cheaply(self) -> bool:
        return True


def make_memtable(kind: str, seed: int = 0) -> MemTable:
    """Factory mapping an :class:`~repro.core.config.LSMConfig` knob to an
    implementation.

    Args:
        kind: One of ``vector``, ``skiplist``, ``hash_skiplist``,
            ``hash_linkedlist``.
        seed: Seed for randomized structures, for reproducibility.
    """
    if kind == "vector":
        return VectorMemTable()
    if kind == "skiplist":
        return SkipListMemTable(seed=seed)
    if kind == "hash_skiplist":
        return HashSkipListMemTable(seed=seed)
    if kind == "hash_linkedlist":
        return HashLinkedListMemTable()
    raise ValueError(f"unknown memtable kind {kind!r}")
