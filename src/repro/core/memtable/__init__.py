"""Memory-buffer implementations (§2.1.1-A, §2.2.1)."""

from .base import MemTable
from .locked import LockedMemTable
from .skiplist import SkipList
from .variants import (
    HashLinkedListMemTable,
    HashSkipListMemTable,
    SkipListMemTable,
    VectorMemTable,
    make_memtable,
)

__all__ = [
    "MemTable",
    "SkipList",
    "LockedMemTable",
    "VectorMemTable",
    "SkipListMemTable",
    "HashSkipListMemTable",
    "HashLinkedListMemTable",
    "make_memtable",
]
