"""Memory-buffer implementations (§2.1.1-A, §2.2.1)."""

from .base import MemTable
from .skiplist import SkipList
from .variants import (
    HashLinkedListMemTable,
    HashSkipListMemTable,
    SkipListMemTable,
    VectorMemTable,
    make_memtable,
)

__all__ = [
    "MemTable",
    "SkipList",
    "VectorMemTable",
    "SkipListMemTable",
    "HashSkipListMemTable",
    "HashLinkedListMemTable",
    "make_memtable",
]
