"""A thread-safe decorator for memory buffers (background mode, §2.2.3).

The four buffer implementations are single-threaded by design — the
synchronous engine never reads and writes one concurrently. Background mode
does: client threads insert into (and read) the active buffer while flush
workers drain rotated ones and concurrent readers probe both.
:class:`LockedMemTable` wraps any :class:`~repro.core.memtable.base.MemTable`
with one reentrant lock per buffer, the granularity RocksDB uses for its
non-concurrent memtable representations (only its skip-list arena supports
lock-free concurrent inserts).

Scans materialize under the lock so iteration never observes a buffer
mid-insert.
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Optional

from ..entry import Entry
from .base import MemTable


class LockedMemTable(MemTable):
    """Serializes every operation of a wrapped buffer on one RLock."""

    def __init__(self, inner: MemTable) -> None:
        super().__init__()
        self._inner = inner
        self._lock = threading.RLock()

    @property
    def inner(self) -> MemTable:
        """The wrapped single-threaded buffer."""
        return self._inner

    @property
    def size_bytes(self) -> int:
        return self._inner.size_bytes

    def __len__(self) -> int:
        return len(self._inner)

    def insert(self, entry: Entry) -> None:
        with self._lock:
            self._inner.insert(entry)

    def get(self, key: str) -> Optional[Entry]:
        with self._lock:
            return self._inner.get(key)

    def entries(self) -> List[Entry]:
        with self._lock:
            return self._inner.entries()

    def scan(self, lo: str, hi: str) -> Iterator[Entry]:
        with self._lock:
            return iter(list(self._inner.scan(lo, hi)))

    @property
    def supports_point_reads_cheaply(self) -> bool:
        return self._inner.supports_point_reads_cheaply
