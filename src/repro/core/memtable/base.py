"""Memory-buffer (memtable) interface.

The in-memory component is the first stop of every write (§2.1.1-A) and of
every read. RocksDB lets developers choose among several buffer
implementations with very different performance envelopes (§2.2.1); this
package mirrors that choice with four interchangeable implementations behind
one abstract interface.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

from ..entry import Entry


class MemTable(abc.ABC):
    """Abstract in-memory buffer of the most recent entries.

    Implementations must support point insert/get; sorted iteration is only
    required at flush (and scan) time, which lets write-optimized
    representations (e.g. an unsorted vector) defer sorting.
    """

    def __init__(self) -> None:
        self._size_bytes = 0
        self._count = 0

    @property
    def size_bytes(self) -> int:
        """Approximate payload bytes currently buffered."""
        return self._size_bytes

    def __len__(self) -> int:
        """Number of live (latest-version) entries buffered."""
        return self._count

    @abc.abstractmethod
    def insert(self, entry: Entry) -> None:
        """Insert or replace-in-place the entry for ``entry.key``.

        Updates to a key already present in the buffer replace the older
        entry immediately (§2.1.2, "Put"), so a buffer never holds two
        versions of one key — except the vector buffer, which emulates the
        replace lazily and reconciles at read/flush time.
        """

    @abc.abstractmethod
    def get(self, key: str) -> Optional[Entry]:
        """Latest buffered entry for ``key`` (may be a tombstone)."""

    @abc.abstractmethod
    def entries(self) -> List[Entry]:
        """All buffered entries sorted by key, one (latest) per key."""

    def scan(self, lo: str, hi: str) -> Iterator[Entry]:
        """Sorted entries with ``lo <= key < hi`` (tombstones included)."""
        for entry in self.entries():
            if entry.key >= hi:
                break
            if entry.key >= lo:
                yield entry

    @property
    @abc.abstractmethod
    def supports_point_reads_cheaply(self) -> bool:
        """Whether :meth:`get` avoids a full scan (used by cost accounting)."""

    def _account_insert(self, entry: Entry, replaced: Optional[Entry]) -> None:
        """Bookkeeping helper shared by subclasses."""
        self._size_bytes += entry.size
        if replaced is None:
            self._count += 1
        else:
            self._size_bytes -= replaced.size
