"""K-way merging iterators for scans and compactions (§2.1.2).

Range lookups "assign an iterator for each run, and the runs are scanned in
parallel" while "returning only the latest version for each key". The same
machinery drives compaction merges. :func:`merge_entries` performs the
sequence-number reconciliation; :func:`resolve_visible` additionally applies
tombstone semantics to produce the user-visible view.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Tuple

from .entry import Entry, EntryKind


def merge_entries(sources: List[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge sorted entry streams, keeping only the newest version per key.

    Args:
        sources: Iterables each sorted by key with unique keys, ordered by
            recency — ``sources[0]`` is the most recent stream. Ties on key
            are broken first by sequence number (newer wins) and then by
            stream recency, which also resolves equal-seqno duplicates that
            can appear transiently during crash recovery.

    Yields:
        One entry per distinct key, in ascending key order. Tombstones are
        *retained* — compaction needs them; use :func:`resolve_visible` for
        the user-visible stream.
    """
    heap: List[Tuple[str, int, int, Entry, Iterator[Entry]]] = []
    for priority, source in enumerate(sources):
        iterator = iter(source)
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(
                heap, (first.key, -first.seqno, priority, first, iterator)
            )

    previous_key: str | None = None
    while heap:
        key, _neg_seqno, priority, entry, iterator = heapq.heappop(heap)
        successor = next(iterator, None)
        if successor is not None:
            if successor.key <= key:
                raise ValueError(
                    "merge sources must be strictly sorted by key"
                )
            heapq.heappush(
                heap,
                (successor.key, -successor.seqno, priority, successor, iterator),
            )
        if key == previous_key:
            continue  # an older version of a key already emitted
        previous_key = key
        yield entry


def resolve_visible(merged: Iterable[Entry]) -> Iterator[Entry]:
    """Filter a merged stream down to what a user scan returns.

    Drops tombstones and the entries they shadow (the shadowed versions were
    already removed by :func:`merge_entries`, so only the tombstones
    themselves remain to be hidden).
    """
    for entry in merged:
        if entry.kind is EntryKind.PUT:
            yield entry
