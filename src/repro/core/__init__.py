"""Core LSM engine: entries, buffers, WAL, SSTables, levels, and the tree."""

from .config import (
    LSMConfig,
    cassandra_like,
    dostoevsky_like,
    leveldb_like,
    rocksdb_like,
)
from .entry import Entry, EntryKind, put, single_delete, tombstone
from .fence import BlockBounds, FenceIndex
from .level import Level
from .merge_operator import (
    Int64AddOperator,
    MaxOperator,
    MergeOperator,
    StringAppendOperator,
)
from .range_tombstone import RangeTombstone
from .run import SortedRun
from .sstable import Block, ReadContext, SSTable
from .stats import TreeStats, percentile
from .tree import LSMTree
from .wal import WriteAheadLog

__all__ = [
    "LSMConfig",
    "rocksdb_like",
    "cassandra_like",
    "leveldb_like",
    "dostoevsky_like",
    "Entry",
    "EntryKind",
    "put",
    "tombstone",
    "single_delete",
    "BlockBounds",
    "FenceIndex",
    "Level",
    "MergeOperator",
    "StringAppendOperator",
    "Int64AddOperator",
    "MaxOperator",
    "RangeTombstone",
    "SortedRun",
    "Block",
    "ReadContext",
    "SSTable",
    "TreeStats",
    "percentile",
    "LSMTree",
    "WriteAheadLog",
]
