"""Key-value entries: the unit of data flowing through the LSM tree.

An LSM tree never edits data in place (§2.1.1-B of the tutorial): every
mutation — insert, update, delete, single-delete — is encoded as a new
*entry* stamped with a monotonically increasing sequence number. Deletes are
*tombstones*: entries whose value is empty and whose kind marks them as a
logical invalidation to be applied lazily during compaction (§2.1.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Fixed per-entry metadata overhead charged by the size model, covering the
#: sequence number, kind tag, and length headers an on-disk format would hold.
ENTRY_OVERHEAD_BYTES = 10

#: Size charged for a tombstone's value field. The tutorial notes tombstones
#: carry a "typically, only a byte-long" value used to mark them (§2.1.2).
TOMBSTONE_VALUE_BYTES = 1


class EntryKind(enum.IntEnum):
    """Discriminates the mutation a log entry encodes.

    ``PUT``
        An insert or a blind update (out-of-place, §2.1.1-B).
    ``DELETE``
        A tombstone. It invalidates *every* older version of the key and is
        itself retained until it reaches the bottommost overlapping level.
    ``SINGLE_DELETE``
        RocksDB-style single delete (§2.3.3): valid only for keys written at
        most once since the last delete; the tombstone is dropped as soon as
        it is compacted with the first matching older entry.
    ``MERGE``
        A read-modify-write operand (§2.2.6; RocksDB's merge operator): the
        value field holds an *operand* that a
        :class:`~repro.core.merge_operator.MergeOperator` later folds into
        the key's base value, at read or compaction time.
    ``RANGE_DELETE``
        A range tombstone (§2.3.3): the key is the inclusive start of the
        deleted range and the value field holds the exclusive end key. It
        logically invalidates every older version of every key in
        ``[key, value)``.
    """

    PUT = 0
    DELETE = 1
    SINGLE_DELETE = 2
    MERGE = 3
    RANGE_DELETE = 4


@dataclass(frozen=True, slots=True)
class Entry:
    """One immutable key-value record.

    Attributes:
        key: Unique object identifier; entries sort lexicographically by key.
        value: Payload for ``PUT`` entries; ``None`` for tombstones.
        seqno: Global sequence number; larger means more recent. The LSM
            invariant (§2.1.1-E) guarantees that, for a given key, sequence
            numbers never increase as a lookup descends levels.
        kind: The mutation type (see :class:`EntryKind`).
        stamp_us: Simulated-clock time at which the entry was created.
            Excluded from equality; used by Lethe-style tombstone-TTL
            triggers (§2.3.3) to measure how long a tombstone has lingered.
    """

    key: str
    value: Optional[str]
    seqno: int
    kind: EntryKind = EntryKind.PUT
    stamp_us: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.kind in (EntryKind.PUT, EntryKind.MERGE):
            if self.value is None:
                raise ValueError("PUT and MERGE entries require a value")
        elif self.kind is EntryKind.RANGE_DELETE:
            if self.value is None or self.value <= self.key:
                raise ValueError(
                    "RANGE_DELETE needs an end key greater than its start"
                )
        elif self.value is not None:
            raise ValueError("tombstones must not carry a value")
        if self.seqno < 0:
            raise ValueError("sequence numbers are non-negative")

    @property
    def is_tombstone(self) -> bool:
        """Whether this entry logically invalidates older versions."""
        return self.kind in (
            EntryKind.DELETE,
            EntryKind.SINGLE_DELETE,
            EntryKind.RANGE_DELETE,
        )

    @property
    def size(self) -> int:
        """Charged on-disk footprint of the entry in bytes."""
        value_bytes = (
            TOMBSTONE_VALUE_BYTES if self.value is None else len(self.value)
        )
        return len(self.key) + value_bytes + ENTRY_OVERHEAD_BYTES

    def shadows(self, other: "Entry") -> bool:
        """Whether this entry supersedes ``other`` during a merge.

        Both entries must refer to the same key; the newer sequence number
        wins, which is exactly the rule compaction applies when "retaining
        only the latest version of each key" (§2.1.2).
        """
        if self.key != other.key:
            raise ValueError("shadowing is defined only for equal keys")
        return self.seqno > other.seqno


def put(key: str, value: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``PUT`` entry; convenience constructor."""
    return Entry(key, value, seqno, EntryKind.PUT, stamp_us)


def tombstone(key: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``DELETE`` tombstone; convenience constructor."""
    return Entry(key, None, seqno, EntryKind.DELETE, stamp_us)


def single_delete(key: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``SINGLE_DELETE`` tombstone; convenience constructor."""
    return Entry(key, None, seqno, EntryKind.SINGLE_DELETE, stamp_us)
