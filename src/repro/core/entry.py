"""Key-value entries: the unit of data flowing through the LSM tree.

An LSM tree never edits data in place (§2.1.1-B of the tutorial): every
mutation — insert, update, delete, single-delete — is encoded as a new
*entry* stamped with a monotonically increasing sequence number. Deletes are
*tombstones*: entries whose value is empty and whose kind marks them as a
logical invalidation to be applied lazily during compaction (§2.1.2).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

#: Fixed per-entry metadata overhead charged by the size model, covering the
#: sequence number, kind tag, and length headers an on-disk format would hold.
ENTRY_OVERHEAD_BYTES = 10

#: Size charged for a tombstone's value field. The tutorial notes tombstones
#: carry a "typically, only a byte-long" value used to mark them (§2.1.2).
TOMBSTONE_VALUE_BYTES = 1


class EntryKind(enum.IntEnum):
    """Discriminates the mutation a log entry encodes.

    ``PUT``
        An insert or a blind update (out-of-place, §2.1.1-B).
    ``DELETE``
        A tombstone. It invalidates *every* older version of the key and is
        itself retained until it reaches the bottommost overlapping level.
    ``SINGLE_DELETE``
        RocksDB-style single delete (§2.3.3): valid only for keys written at
        most once since the last delete; the tombstone is dropped as soon as
        it is compacted with the first matching older entry.
    ``MERGE``
        A read-modify-write operand (§2.2.6; RocksDB's merge operator): the
        value field holds an *operand* that a
        :class:`~repro.core.merge_operator.MergeOperator` later folds into
        the key's base value, at read or compaction time.
    ``RANGE_DELETE``
        A range tombstone (§2.3.3): the key is the inclusive start of the
        deleted range and the value field holds the exclusive end key. It
        logically invalidates every older version of every key in
        ``[key, value)``.
    """

    PUT = 0
    DELETE = 1
    SINGLE_DELETE = 2
    MERGE = 3
    RANGE_DELETE = 4


@dataclass(frozen=True, slots=True)
class Entry:
    """One immutable key-value record.

    Attributes:
        key: Unique object identifier; entries sort lexicographically by key.
        value: Payload for ``PUT`` entries; ``None`` for tombstones.
        seqno: Global sequence number; larger means more recent. The LSM
            invariant (§2.1.1-E) guarantees that, for a given key, sequence
            numbers never increase as a lookup descends levels.
        kind: The mutation type (see :class:`EntryKind`).
        stamp_us: Simulated-clock time at which the entry was created.
            Excluded from equality; used by Lethe-style tombstone-TTL
            triggers (§2.3.3) to measure how long a tombstone has lingered.
    """

    key: str
    value: Optional[str]
    seqno: int
    kind: EntryKind = EntryKind.PUT
    stamp_us: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.kind in (EntryKind.PUT, EntryKind.MERGE):
            if self.value is None:
                raise ValueError("PUT and MERGE entries require a value")
        elif self.kind is EntryKind.RANGE_DELETE:
            if self.value is None or self.value <= self.key:
                raise ValueError(
                    "RANGE_DELETE needs an end key greater than its start"
                )
        elif self.value is not None:
            raise ValueError("tombstones must not carry a value")
        if self.seqno < 0:
            raise ValueError("sequence numbers are non-negative")

    @property
    def is_tombstone(self) -> bool:
        """Whether this entry logically invalidates older versions."""
        return self.kind in (
            EntryKind.DELETE,
            EntryKind.SINGLE_DELETE,
            EntryKind.RANGE_DELETE,
        )

    @property
    def size(self) -> int:
        """Charged on-disk footprint of the entry in bytes."""
        value_bytes = (
            TOMBSTONE_VALUE_BYTES if self.value is None else len(self.value)
        )
        return len(self.key) + value_bytes + ENTRY_OVERHEAD_BYTES

    def shadows(self, other: "Entry") -> bool:
        """Whether this entry supersedes ``other`` during a merge.

        Both entries must refer to the same key; the newer sequence number
        wins, which is exactly the rule compaction applies when "retaining
        only the latest version of each key" (§2.1.2).
        """
        if self.key != other.key:
            raise ValueError("shadowing is defined only for equal keys")
        return self.seqno > other.seqno


def put(key: str, value: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``PUT`` entry; convenience constructor."""
    return Entry(key, value, seqno, EntryKind.PUT, stamp_us)


def tombstone(key: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``DELETE`` tombstone; convenience constructor."""
    return Entry(key, None, seqno, EntryKind.DELETE, stamp_us)


def single_delete(key: str, seqno: int, stamp_us: float = 0.0) -> Entry:
    """Build a ``SINGLE_DELETE`` tombstone; convenience constructor."""
    return Entry(key, None, seqno, EntryKind.SINGLE_DELETE, stamp_us)


# -- batched binary codec ----------------------------------------------------
#
# The hot-path block codec shared by the SSTable file format (and any other
# caller serializing runs of entries): a *columnar* layout — all fixed-width
# fields first, then one string heap — so a whole block is encoded with one
# ``struct.pack`` call and decoded with one ``struct.iter_unpack`` call,
# instead of one pack/unpack per entry. Layout (little-endian, no padding)::
#
#     per entry, in the fixed section:
#         u16 key_len | i32 value_len (-1 = tombstone) | u64 seqno |
#         u8 kind | f64 stamp_us
#     then the heap: key bytes, value bytes, entry after entry
#
# ``pack_entries`` returns the fixed section + heap; callers prepend their
# own headers/checksums. Chunked packing bounds the dynamically built format
# string (the per-chunk format is cached by the ``struct`` module).

#: Fixed-width per-entry header of the batched codec.
ENTRY_FIXED = struct.Struct("<HiQBd")

_FIXED_FMT = "HiQBd"

#: Entries packed per ``struct.pack`` call (bounds the format-string size).
_PACK_CHUNK = 512


def pack_entries(entries: Sequence[Entry]) -> bytes:
    """Serialize ``entries`` into the columnar block layout.

    One ``struct.pack`` call per :data:`_PACK_CHUNK` entries for the fixed
    section and one ``bytes.join`` for the string heap — the per-entry
    Python cost is just the UTF-8 encodes.
    """
    fixed_parts: List[bytes] = []
    heap_parts: List[bytes] = []
    heap_append = heap_parts.append
    for start in range(0, len(entries), _PACK_CHUNK):
        chunk = entries[start : start + _PACK_CHUNK]
        flat: List[Union[int, float]] = []
        extend = flat.extend
        for entry in chunk:
            key_bytes = entry.key.encode("utf-8")
            value = entry.value
            if value is None:
                value_bytes = b""
                value_len = -1
            else:
                value_bytes = value.encode("utf-8")
                value_len = len(value_bytes)
            extend(
                (len(key_bytes), value_len, entry.seqno, entry.kind,
                 entry.stamp_us)
            )
            heap_append(key_bytes)
            heap_append(value_bytes)
        fixed_parts.append(struct.pack("<" + _FIXED_FMT * len(chunk), *flat))
    return b"".join(fixed_parts) + b"".join(heap_parts)


def unpack_entries(
    buffer: Union[bytes, memoryview], count: int, offset: int = 0
) -> Tuple[List[Entry], int]:
    """Deserialize ``count`` entries packed by :func:`pack_entries`.

    Returns the entries and the total number of bytes consumed from
    ``offset``. The fixed section is decoded with a single
    ``struct.iter_unpack`` over a ``memoryview`` (no intermediate per-entry
    bytes objects); heap strings are decoded straight from view slices.

    Raises:
        ValueError: If the buffer is too short for the declared count
            (``struct.error`` surfaces as its ``ValueError`` subclass
            behavior via an explicit length check here).
    """
    view = memoryview(buffer)
    fixed_size = ENTRY_FIXED.size * count
    heap_start = offset + fixed_size
    if heap_start > len(view):
        raise ValueError("entry block truncated inside its fixed section")
    entries: List[Entry] = []
    append = entries.append
    position = heap_start
    kind_of = EntryKind
    for key_len, value_len, seqno, kind, stamp_us in ENTRY_FIXED.iter_unpack(
        view[offset:heap_start]
    ):
        key_end = position + key_len
        if value_len >= 0:
            value_end = key_end + value_len
        else:
            value_end = key_end
        if value_end > len(view):
            raise ValueError("entry block truncated inside its heap")
        key = str(view[position:key_end], "utf-8")
        value: Optional[str] = (
            str(view[key_end:value_end], "utf-8") if value_len >= 0 else None
        )
        append(Entry(key, value, seqno, kind_of(kind), stamp_us))
        position = value_end
    return entries, position - offset
