"""Write-ahead log: durability for the memory buffer.

Batched ingestion (§2.1.1-A) keeps the newest entries only in memory, so
every production LSM engine pairs the buffer with a write-ahead log. This
WAL appends one record per external write, charges the simulated device for
sequential log pages (so write amplification accounts for the log), and can
optionally mirror records to a real file for crash-recovery tests.

File format (one record per line)::

    <crc32 hex>,<json payload>\n

A batch append writes the whole commit group as one *group record* —
``crc,{"g":[[k,v,s,t,u], ...]}`` — a single line, encoded with a single
``json.dumps``, checksummed with one whole-buffer ``zlib.crc32``, and
written with one file write. Besides amortizing the per-record encode
cost (the hot-path batching lever from Luo & Carey's ingestion
analysis), the one-line group is atomic under recovery for free: a torn
group (crash before its single sync) is one torn line, discarded whole,
never replayed partially. Logs written by earlier versions — a
``crc,{"b":N}`` *batch header* followed by N entry records — replay
unchanged.

Recovery tolerates a torn tail — the unparseable suffix a crash
mid-append leaves behind, including trailing garbage after the tear —
but treats corruption followed by any valid record as fatal, mirroring
the usual WAL contract.

Durability contract (fsyncgate semantics): an entry only joins
:attr:`WriteAheadLog.pending_entries` — i.e. is only *acknowledged* —
after its sync succeeds. A flush that keeps failing (bounded retry) or a
failed ``fsync`` poisons the segment: the failed write is not acked, and
every later append raises :class:`~repro.errors.DurabilityError`, because
after one failed sync the OS may have dropped the dirty pages and the
segment tail can no longer be trusted.

The failpoints declared here (``wal.append.*``, ``wal.batch.*``,
``wal.sync``, ``wal.fsync``) are catalogued in
:mod:`repro.faults.registry` and exercised by the crash-consistency
sweep.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Callable, Iterator, List, Optional, Union

from ..errors import ClosedError, CorruptionError, DurabilityError
from ..faults.registry import fault_point
from ..storage.disk import SimulatedDisk
from .entry import Entry, EntryKind

#: Transient flush failures tolerated per sync before the segment is
#: declared poisoned (bounded retry for flaky-I/O injection).
SYNC_RETRIES = 3

#: Post-commit hook signature: one call per acknowledged commit group.
CommitHook = Callable[[List["Entry"]], None]

#: Durability syscall for acknowledged commits. ``fdatasync`` flushes the
#: data plus the metadata needed to retrieve it (the size, for appends)
#: while skipping unrelated inode updates — same crash guarantee as
#: ``fsync`` for an append-only log, measurably cheaper on ext4.
_datasync = getattr(os, "fdatasync", os.fsync)


def _encode(entry: Entry) -> str:
    payload = json.dumps(
        {
            "k": entry.key,
            "v": entry.value,
            "s": entry.seqno,
            "t": int(entry.kind),
            "u": entry.stamp_us,
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _encode_batch_header(count: int) -> str:
    """Legacy (pre-group-record) batch header; kept for format tests."""
    payload = json.dumps({"b": count}, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _encode_group(entries: List[Entry]) -> str:
    """Encode a whole commit group as one record.

    One ``json.dumps`` and one whole-buffer ``zlib.crc32`` for N entries —
    the batched-codec counterpart of per-entry :func:`_encode`.
    """
    payload = json.dumps(
        {
            "g": [
                [entry.key, entry.value, entry.seqno, int(entry.kind),
                 entry.stamp_us]
                for entry in entries
            ]
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _decode_line(
    line: str,
    *,
    path: Optional[str] = None,
    record_index: Optional[int] = None,
    byte_offset: Optional[int] = None,
) -> Union[Entry, int, List[Entry]]:
    """Decode one WAL line: an :class:`Entry`, a commit-group list, or a
    legacy batch-header count."""
    crc_hex, _sep, payload = line.rstrip("\n").partition(",")
    if not _sep:
        raise CorruptionError(
            "WAL record missing checksum separator",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        )
    try:
        expected = int(crc_hex, 16)
    except ValueError as exc:
        raise CorruptionError(
            "WAL record has malformed checksum",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc
    actual = zlib.crc32(payload.encode("utf-8"))
    if actual != expected:
        raise CorruptionError(
            "WAL record failed checksum",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
            expected_crc=expected,
            actual_crc=actual,
        )
    try:
        fields = json.loads(payload)
    except ValueError as exc:
        raise CorruptionError(
            "WAL record failed to decode",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc
    if isinstance(fields, dict) and "g" in fields and "k" not in fields:
        try:
            return [
                Entry(
                    key=key,
                    value=value,
                    seqno=seqno,
                    kind=EntryKind(kind),
                    stamp_us=stamp_us,
                )
                for key, value, seqno, kind, stamp_us in fields["g"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptionError(
                "WAL group record failed to decode",
                path=path,
                record_index=record_index,
                byte_offset=byte_offset,
            ) from exc
    if isinstance(fields, dict) and "b" in fields and "k" not in fields:
        try:
            return int(fields["b"])
        except (TypeError, ValueError) as exc:
            raise CorruptionError(
                "WAL batch header failed to decode",
                path=path,
                record_index=record_index,
                byte_offset=byte_offset,
            ) from exc
    try:
        return Entry(
            key=fields["k"],
            value=fields["v"],
            seqno=fields["s"],
            kind=EntryKind(fields["t"]),
            stamp_us=fields.get("u", 0.0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptionError(
            "WAL record failed to decode",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc


def _decode(line: str) -> Entry:
    decoded = _decode_line(line)
    if not isinstance(decoded, Entry):
        raise CorruptionError("expected a WAL entry record, got a batch header")
    return decoded


class WriteAheadLog:
    """Sequential log of not-yet-flushed entries.

    Args:
        disk: Simulated device charged for log pages as records accumulate.
            Appends are buffered: a page write is charged each time the
            pending bytes cross a page boundary, modeling group commit.
        path: Optional real file to mirror records into, enabling
            :meth:`replay` after a simulated crash. ``None`` keeps the log
            purely in memory (the common case for experiments). The file
            is opened line-buffered, so every completed record reaches the
            OS as soon as it is written — the crash model is "everything
            written survives a process death; fsync decides what survives
            power loss".
        fsync: When mirroring to a real file, also ``os.fsync`` it on
            every sync. This is the durability cost group commit exists
            to amortize: one fsync per :meth:`append_batch` instead of
            one per write.
        on_commit: Post-commit hook called with the list of entries of
            each successful :meth:`append` / :meth:`append_batch` —
            after the record bytes are written *and* the sync succeeded,
            i.e. with exactly the records the durability contract has
            acknowledged. This is the WAL-shipping tap replication uses:
            one call per commit group, so the group can be re-applied
            atomically on a replica. A hook exception propagates to the
            writer (sync replication surfaces its ack failure here) but
            never un-commits the local records.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        path: Optional[str] = None,
        fsync: bool = False,
        on_commit: Optional[CommitHook] = None,
    ) -> None:
        self._disk = disk
        self._path = path
        self._fsync = fsync
        self.on_commit = on_commit
        self._pending: List[Entry] = []
        self._unaccounted_bytes = 0
        self._closed = False
        self._poison_cause: Optional[BaseException] = None
        self._file = (
            open(path, "a", encoding="utf-8", buffering=1) if path else None
        )
        #: File flushes performed so far (0 for in-memory logs). One per
        #: :meth:`append`, but only one per :meth:`append_batch` — the
        #: observable benefit of group commit.
        self.sync_count = 0
        #: Failed flush attempts that were retried (transient-I/O events).
        self.sync_retries = 0

    @property
    def pending_entries(self) -> List[Entry]:
        """Entries *acknowledged* since the last :meth:`reset` (oldest
        first). An entry joins this list only after its sync succeeded; a
        write whose sync failed is absent, by the durability contract."""
        return list(self._pending)

    @property
    def poisoned(self) -> bool:
        """Whether a failed sync has poisoned this segment."""
        return self._poison_cause is not None

    def _check_writable(self) -> None:
        if self._closed:
            raise ClosedError("WAL is closed")
        if self._poison_cause is not None:
            raise DurabilityError(
                f"WAL segment poisoned by an earlier failed sync"
                f" ({self._path})"
            ) from self._poison_cause

    def _charge(self, nbytes: int) -> None:
        self._unaccounted_bytes += nbytes
        page = self._disk.page_size
        while self._unaccounted_bytes >= page:
            self._disk.write(page, cause="wal")
            self._unaccounted_bytes -= page

    def append(self, entry: Entry) -> None:
        """Durably record one entry before it enters the memtable."""
        self._check_writable()
        record = _encode(entry)
        if self._file is not None:
            fault_point("wal.append.start", path=self._path)
            self._file.write(record)
            fault_point(
                "wal.append.written",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            self._sync()
        self._charge(len(record))
        self._pending.append(entry)
        if self.on_commit is not None:
            self.on_commit([entry])

    def append_batch(self, entries: List[Entry]) -> None:
        """Durably record several entries with a single log flush.

        The group-commit primitive, batched end to end: the whole group
        is encoded as one record (one ``json.dumps`` + one whole-buffer
        CRC), written with one file write, and the backing file (when
        present) is flushed exactly once — N concurrent writers coalesced
        into one batch pay one encode, one write syscall, and one sync
        instead of N of each. The single-line group record is atomic
        under recovery: replay yields all N entries or none. Device
        accounting charges the group record's actual bytes — the log is
        sequential either way; only the per-batch costs change.
        """
        self._check_writable()
        if not entries:
            return
        record = _encode_group(entries)
        if self._file is not None:
            fault_point("wal.batch.start", path=self._path)
            self._file.write(record)
            fault_point(
                "wal.batch.record",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            fault_point(
                "wal.batch.written",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            self._sync()
        self._charge(len(record))
        self._pending.extend(entries)
        if self.on_commit is not None:
            self.on_commit(list(entries))

    def _sync(self) -> None:
        """One log sync: flush (and optionally fsync) the backing file.

        A transient flush failure is retried up to :data:`SYNC_RETRIES`
        times; exhausted retries — or any ``fsync`` failure, which is
        never retried (fsyncgate: a failed fsync may have dropped the
        dirty pages, so retrying can silently succeed on lost data) —
        poison the segment and raise
        :class:`~repro.errors.DurabilityError`.
        """
        error: Optional[OSError] = None
        for _attempt in range(1 + SYNC_RETRIES):
            try:
                fault_point("wal.sync", path=self._path)
                self._file.flush()
                error = None
                break
            except OSError as exc:
                error = exc
                self.sync_retries += 1
        if error is not None:
            self._poison(error)
        if self._fsync:
            try:
                fault_point("wal.fsync", path=self._path)
                _datasync(self._file.fileno())
            except OSError as exc:
                self._poison(exc)
        self.sync_count += 1

    def _poison(self, cause: OSError) -> None:
        self._poison_cause = cause
        raise DurabilityError(
            f"WAL sync failed; segment poisoned ({self._path})"
        ) from cause

    def reset(self) -> None:
        """Discard the log after its entries were flushed to an SSTable.

        Truncating gives the segment a fresh file, which also clears any
        sync poison: the untrustworthy tail is gone.
        """
        if self._closed:
            raise ClosedError("WAL is closed")
        self._pending.clear()
        self._unaccounted_bytes = 0
        if self._file is not None and self._path is not None:
            self._file.close()
            self._file = open(self._path, "w", encoding="utf-8", buffering=1)
        self._poison_cause = None

    def close(self) -> None:
        """Close the backing file, if any. Idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    @staticmethod
    def replay(path: str) -> Iterator[Entry]:
        """Yield the entries recorded in a WAL file, oldest first.

        Tolerated (the normal signatures of a crash mid-append):

        * a torn tail — an unparseable final record, optionally followed
          by more garbage lines (nothing valid may follow the tear);
        * an incomplete trailing batch group — a torn single-line group
          record, or (legacy format) a batch header whose N records were
          not all written; the whole group is discarded, preserving
          batch atomicity.

        Corruption *followed by a valid record* means the damage is not a
        crash artifact and raises :class:`~repro.errors.CorruptionError`
        with the file path, record index, and byte offset.
        """
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        offsets = [0]
        for line in lines:
            offsets.append(offsets[-1] + len(line.encode("utf-8")))

        def decode_at(index: int) -> Union[Entry, int]:
            return _decode_line(
                lines[index],
                path=path,
                record_index=index,
                byte_offset=offsets[index],
            )

        def tail_is_torn(start: int) -> bool:
            """True when nothing from ``start`` onward decodes — i.e. the
            damage is confined to the crash tail."""
            for j in range(start, len(lines)):
                try:
                    decode_at(j)
                except CorruptionError:
                    continue
                return False
            return True

        index = 0
        while index < len(lines):
            try:
                decoded = decode_at(index)
            except CorruptionError:
                if tail_is_torn(index + 1):
                    return
                raise
            if isinstance(decoded, Entry):
                yield decoded
                index += 1
                continue
            if isinstance(decoded, list):
                # One-line commit group: atomic by construction.
                for entry in decoded:
                    yield entry
                index += 1
                continue
            # Legacy batch header: the next `decoded` lines form one
            # atomic group.
            group_end = index + 1 + decoded
            if group_end > len(lines):
                # Crash mid-batch: the group's sync never happened, so
                # nothing in it was acked. Discard it whole.
                return
            group: List[Entry] = []
            for j in range(index + 1, group_end):
                try:
                    member = decode_at(j)
                except CorruptionError:
                    member = None
                if not isinstance(member, Entry):
                    if tail_is_torn(j):
                        return
                    raise CorruptionError(
                        "WAL batch group corrupted mid-file",
                        path=path,
                        record_index=j,
                        byte_offset=offsets[j],
                    )
                group.append(member)
            for entry in group:
                yield entry
            index = group_end
