"""Write-ahead log: durability for the memory buffer.

Batched ingestion (§2.1.1-A) keeps the newest entries only in memory, so
every production LSM engine pairs the buffer with a write-ahead log. This
WAL appends one record per external write, charges the simulated device for
sequential log pages (so write amplification accounts for the log), and can
optionally mirror records to a real file for crash-recovery tests.

File format (one record per line)::

    <crc32 hex>,<json payload>\n

A batch append writes the whole commit group as one *group record* —
``crc,{"g":[[k,v,s,t,u], ...]}`` — a single line, encoded with a single
``json.dumps``, checksummed with one whole-buffer ``zlib.crc32``, and
written with one file write. Besides amortizing the per-record encode
cost (the hot-path batching lever from Luo & Carey's ingestion
analysis), the one-line group is atomic under recovery for free: a torn
group (crash before its single sync) is one torn line, discarded whole,
never replayed partially. Logs written by earlier versions — a
``crc,{"b":N}`` *batch header* followed by N entry records — replay
unchanged.

Recovery tolerates a torn tail — the unparseable suffix a crash
mid-append leaves behind, including trailing garbage after the tear —
but treats corruption followed by any valid record as fatal, mirroring
the usual WAL contract.

Durability contract (fsyncgate semantics): an entry only joins
:attr:`WriteAheadLog.pending_entries` — i.e. is only *acknowledged* —
after its sync succeeds. A flush that keeps failing (bounded retry) or a
failed ``fsync`` poisons the segment: the failed write is not acked, and
every later append raises :class:`~repro.errors.DurabilityError`, because
after one failed sync the OS may have dropped the dirty pages and the
segment tail can no longer be trusted.

The failpoints declared here (``wal.append.*``, ``wal.batch.*``,
``wal.sync``, ``wal.fsync``) are catalogued in
:mod:`repro.faults.registry` and exercised by the crash-consistency
sweep.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Callable, Iterator, List, Optional, Union

from ..errors import ClosedError, CorruptionError, DurabilityError
from ..faults.registry import fault_point
from ..storage.disk import SimulatedDisk
from .entry import Entry, EntryKind

#: Transient flush failures tolerated per sync before the segment is
#: declared poisoned (bounded retry for flaky-I/O injection).
SYNC_RETRIES = 3

#: Post-commit hook signature: one call per acknowledged commit group.
CommitHook = Callable[[List["Entry"]], None]

#: Durability syscall for acknowledged commits. ``fdatasync`` flushes the
#: data plus the metadata needed to retrieve it (the size, for appends)
#: while skipping unrelated inode updates — same crash guarantee as
#: ``fsync`` for an append-only log, measurably cheaper on ext4.
_datasync = getattr(os, "fdatasync", os.fsync)


def _encode(entry: Entry) -> str:
    payload = json.dumps(
        {
            "k": entry.key,
            "v": entry.value,
            "s": entry.seqno,
            "t": int(entry.kind),
            "u": entry.stamp_us,
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _encode_batch_header(count: int) -> str:
    """Legacy (pre-group-record) batch header; kept for format tests."""
    payload = json.dumps({"b": count}, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


class PreparedGroup:
    """A decoded PREPARE record: a commit group awaiting a txn decision."""

    __slots__ = ("txn_id", "entries")

    def __init__(self, txn_id: int, entries: List[Entry]) -> None:
        self.txn_id = txn_id
        self.entries = entries


def _encode_prepare(txn_id: int, entries: List[Entry]) -> str:
    """Encode a two-phase-commit PREPARE record: a commit group tagged
    with its transaction id (``crc,{"p":txn,"g":[...]}``). Same one-line
    atomicity as a plain group record, but replay applies it only when
    the coordinator's decision log says the transaction committed.
    """
    payload = json.dumps(
        {
            "p": txn_id,
            "g": [
                [entry.key, entry.value, entry.seqno, int(entry.kind),
                 entry.stamp_us]
                for entry in entries
            ],
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _encode_group(entries: List[Entry]) -> str:
    """Encode a whole commit group as one record.

    One ``json.dumps`` and one whole-buffer ``zlib.crc32`` for N entries —
    the batched-codec counterpart of per-entry :func:`_encode`.
    """
    payload = json.dumps(
        {
            "g": [
                [entry.key, entry.value, entry.seqno, int(entry.kind),
                 entry.stamp_us]
                for entry in entries
            ]
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _decode_line(
    line: str,
    *,
    path: Optional[str] = None,
    record_index: Optional[int] = None,
    byte_offset: Optional[int] = None,
) -> Union[Entry, int, List[Entry], PreparedGroup]:
    """Decode one WAL line: an :class:`Entry`, a commit-group list, a
    :class:`PreparedGroup`, or a legacy batch-header count."""
    crc_hex, _sep, payload = line.rstrip("\n").partition(",")
    if not _sep:
        raise CorruptionError(
            "WAL record missing checksum separator",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        )
    try:
        expected = int(crc_hex, 16)
    except ValueError as exc:
        raise CorruptionError(
            "WAL record has malformed checksum",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc
    actual = zlib.crc32(payload.encode("utf-8"))
    if actual != expected:
        raise CorruptionError(
            "WAL record failed checksum",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
            expected_crc=expected,
            actual_crc=actual,
        )
    try:
        fields = json.loads(payload)
    except ValueError as exc:
        raise CorruptionError(
            "WAL record failed to decode",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc
    if isinstance(fields, dict) and "g" in fields and "k" not in fields:
        try:
            entries = [
                Entry(
                    key=key,
                    value=value,
                    seqno=seqno,
                    kind=EntryKind(kind),
                    stamp_us=stamp_us,
                )
                for key, value, seqno, kind, stamp_us in fields["g"]
            ]
            if "p" in fields:
                return PreparedGroup(int(fields["p"]), entries)
            return entries
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptionError(
                "WAL group record failed to decode",
                path=path,
                record_index=record_index,
                byte_offset=byte_offset,
            ) from exc
    if isinstance(fields, dict) and "b" in fields and "k" not in fields:
        try:
            return int(fields["b"])
        except (TypeError, ValueError) as exc:
            raise CorruptionError(
                "WAL batch header failed to decode",
                path=path,
                record_index=record_index,
                byte_offset=byte_offset,
            ) from exc
    try:
        return Entry(
            key=fields["k"],
            value=fields["v"],
            seqno=fields["s"],
            kind=EntryKind(fields["t"]),
            stamp_us=fields.get("u", 0.0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptionError(
            "WAL record failed to decode",
            path=path,
            record_index=record_index,
            byte_offset=byte_offset,
        ) from exc


def _decode(line: str) -> Entry:
    decoded = _decode_line(line)
    if not isinstance(decoded, Entry):
        raise CorruptionError("expected a WAL entry record, got a batch header")
    return decoded


class WriteAheadLog:
    """Sequential log of not-yet-flushed entries.

    Args:
        disk: Simulated device charged for log pages as records accumulate.
            Appends are buffered: a page write is charged each time the
            pending bytes cross a page boundary, modeling group commit.
        path: Optional real file to mirror records into, enabling
            :meth:`replay` after a simulated crash. ``None`` keeps the log
            purely in memory (the common case for experiments). The file
            is opened line-buffered, so every completed record reaches the
            OS as soon as it is written — the crash model is "everything
            written survives a process death; fsync decides what survives
            power loss".
        fsync: When mirroring to a real file, also ``os.fsync`` it on
            every sync. This is the durability cost group commit exists
            to amortize: one fsync per :meth:`append_batch` instead of
            one per write.
        on_commit: Post-commit hook called with the list of entries of
            each successful :meth:`append` / :meth:`append_batch` —
            after the record bytes are written *and* the sync succeeded,
            i.e. with exactly the records the durability contract has
            acknowledged. This is the WAL-shipping tap replication uses:
            one call per commit group, so the group can be re-applied
            atomically on a replica. A hook exception propagates to the
            writer (sync replication surfaces its ack failure here) but
            never un-commits the local records.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        path: Optional[str] = None,
        fsync: bool = False,
        on_commit: Optional[CommitHook] = None,
    ) -> None:
        self._disk = disk
        self._path = path
        self._fsync = fsync
        self.on_commit = on_commit
        self._pending: List[Entry] = []
        self._prepared: "dict[int, List[Entry]]" = {}
        self._unaccounted_bytes = 0
        self._closed = False
        self._poison_cause: Optional[BaseException] = None
        self._file = (
            open(path, "a", encoding="utf-8", buffering=1) if path else None
        )
        #: File flushes performed so far (0 for in-memory logs). One per
        #: :meth:`append`, but only one per :meth:`append_batch` — the
        #: observable benefit of group commit.
        self.sync_count = 0
        #: Failed flush attempts that were retried (transient-I/O events).
        self.sync_retries = 0

    @property
    def pending_entries(self) -> List[Entry]:
        """Entries *acknowledged* since the last :meth:`reset` (oldest
        first). An entry joins this list only after its sync succeeded; a
        write whose sync failed is absent, by the durability contract."""
        return list(self._pending)

    @property
    def poisoned(self) -> bool:
        """Whether a failed sync has poisoned this segment."""
        return self._poison_cause is not None

    def _check_writable(self) -> None:
        if self._closed:
            raise ClosedError("WAL is closed")
        if self._poison_cause is not None:
            raise DurabilityError(
                f"WAL segment poisoned by an earlier failed sync"
                f" ({self._path})"
            ) from self._poison_cause

    def _charge(self, nbytes: int) -> None:
        self._unaccounted_bytes += nbytes
        page = self._disk.page_size
        while self._unaccounted_bytes >= page:
            self._disk.write(page, cause="wal")
            self._unaccounted_bytes -= page

    def append(self, entry: Entry) -> None:
        """Durably record one entry before it enters the memtable."""
        self._check_writable()
        record = _encode(entry)
        if self._file is not None:
            fault_point("wal.append.start", path=self._path)
            self._file.write(record)
            fault_point(
                "wal.append.written",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            self._sync()
        self._charge(len(record))
        self._pending.append(entry)
        if self.on_commit is not None:
            self.on_commit([entry])

    def append_batch(self, entries: List[Entry]) -> None:
        """Durably record several entries with a single log flush.

        The group-commit primitive, batched end to end: the whole group
        is encoded as one record (one ``json.dumps`` + one whole-buffer
        CRC), written with one file write, and the backing file (when
        present) is flushed exactly once — N concurrent writers coalesced
        into one batch pay one encode, one write syscall, and one sync
        instead of N of each. The single-line group record is atomic
        under recovery: replay yields all N entries or none. Device
        accounting charges the group record's actual bytes — the log is
        sequential either way; only the per-batch costs change.
        """
        self._check_writable()
        if not entries:
            return
        record = _encode_group(entries)
        if self._file is not None:
            fault_point("wal.batch.start", path=self._path)
            self._file.write(record)
            fault_point(
                "wal.batch.record",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            fault_point(
                "wal.batch.written",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            self._sync()
        self._charge(len(record))
        self._pending.extend(entries)
        if self.on_commit is not None:
            self.on_commit(list(entries))

    def append_prepare(self, txn_id: int, entries: List[Entry]) -> None:
        """Durably record a commit group *without* acknowledging it.

        The first phase of two-phase commit: the group's bytes and sync
        cost are identical to :meth:`append_batch`, but the entries do
        not join :attr:`pending_entries` and the :attr:`on_commit` hook
        does not fire — the group is not committed until the coordinator
        decides, at which point :meth:`commit_prepared` (or
        :meth:`abort_prepared`) settles it. Replay skips a prepared
        group unless told its transaction committed.
        """
        self._check_writable()
        if not entries:
            return
        record = _encode_prepare(txn_id, entries)
        if self._file is not None:
            fault_point("wal.batch.start", path=self._path)
            self._file.write(record)
            fault_point(
                "txn.prepare.record",
                path=self._path,
                tail_bytes=len(record),
                handle=self._file,
            )
            self._sync()
        self._charge(len(record))
        self._prepared[txn_id] = list(entries)

    def commit_prepared(self, txn_id: int) -> List[Entry]:
        """Settle a prepared group as committed: the entries become
        acknowledged (join :attr:`pending_entries`) and the
        :attr:`on_commit` hook fires with the group — exactly the
        observable effects a direct :meth:`append_batch` would have had.
        The commit *decision* is durable in the coordinator's log, not
        here; this segment already holds the group's bytes."""
        entries = self._prepared.pop(txn_id)
        self._pending.extend(entries)
        if self.on_commit is not None:
            self.on_commit(list(entries))
        return entries

    def abort_prepared(self, txn_id: int) -> None:
        """Settle a prepared group as rolled back: it is never
        acknowledged. The PREPARE record stays in the file; replay
        discards it for lack of a commit decision."""
        self._prepared.pop(txn_id, None)

    def _sync(self) -> None:
        """One log sync: flush (and optionally fsync) the backing file.

        A transient flush failure is retried up to :data:`SYNC_RETRIES`
        times; exhausted retries — or any ``fsync`` failure, which is
        never retried (fsyncgate: a failed fsync may have dropped the
        dirty pages, so retrying can silently succeed on lost data) —
        poison the segment and raise
        :class:`~repro.errors.DurabilityError`.
        """
        error: Optional[OSError] = None
        for _attempt in range(1 + SYNC_RETRIES):
            try:
                fault_point("wal.sync", path=self._path)
                self._file.flush()
                error = None
                break
            except OSError as exc:
                error = exc
                self.sync_retries += 1
        if error is not None:
            self._poison(error)
        if self._fsync:
            try:
                fault_point("wal.fsync", path=self._path)
                _datasync(self._file.fileno())
            except OSError as exc:
                self._poison(exc)
        self.sync_count += 1

    def _poison(self, cause: OSError) -> None:
        self._poison_cause = cause
        raise DurabilityError(
            f"WAL sync failed; segment poisoned ({self._path})"
        ) from cause

    def reset(self) -> None:
        """Discard the log after its entries were flushed to an SSTable.

        Truncating gives the segment a fresh file, which also clears any
        sync poison: the untrustworthy tail is gone.
        """
        if self._closed:
            raise ClosedError("WAL is closed")
        self._pending.clear()
        self._prepared.clear()
        self._unaccounted_bytes = 0
        if self._file is not None and self._path is not None:
            self._file.close()
            self._file = open(self._path, "w", encoding="utf-8", buffering=1)
        self._poison_cause = None

    def close(self) -> None:
        """Close the backing file, if any. Idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    @staticmethod
    def replay(
        path: str, committed_txns: "Optional[set] | frozenset" = None
    ) -> Iterator[Entry]:
        """Yield the entries recorded in a WAL file, oldest first.

        Tolerated (the normal signatures of a crash mid-append):

        * a torn tail — an unparseable final record, optionally followed
          by more garbage lines (nothing valid may follow the tear);
        * an incomplete trailing batch group — a torn single-line group
          record, or (legacy format) a batch header whose N records were
          not all written; the whole group is discarded, preserving
          batch atomicity.

        PREPARE records (two-phase commit) follow presumed-abort: a
        prepared group is replayed — rolled *forward* — only when its
        transaction id is in ``committed_txns`` (the decisions recovered
        from the coordinator's :class:`TxnDecisionLog`); any prepared
        group without a durable commit decision is rolled *back* by
        simply not replaying it.

        Corruption *followed by a valid record* means the damage is not a
        crash artifact and raises :class:`~repro.errors.CorruptionError`
        with the file path, record index, and byte offset.
        """
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        offsets = [0]
        for line in lines:
            offsets.append(offsets[-1] + len(line.encode("utf-8")))

        def decode_at(index: int) -> Union[Entry, int]:
            return _decode_line(
                lines[index],
                path=path,
                record_index=index,
                byte_offset=offsets[index],
            )

        def tail_is_torn(start: int) -> bool:
            """True when nothing from ``start`` onward decodes — i.e. the
            damage is confined to the crash tail."""
            for j in range(start, len(lines)):
                try:
                    decode_at(j)
                except CorruptionError:
                    continue
                return False
            return True

        index = 0
        while index < len(lines):
            try:
                decoded = decode_at(index)
            except CorruptionError:
                if tail_is_torn(index + 1):
                    return
                raise
            if isinstance(decoded, Entry):
                yield decoded
                index += 1
                continue
            if isinstance(decoded, PreparedGroup):
                if committed_txns and decoded.txn_id in committed_txns:
                    # Roll forward: the coordinator's COMMIT decision is
                    # durable, so the group is as good as committed.
                    fault_point("txn.rollforward", path=path)
                    for entry in decoded.entries:
                        yield entry
                # else roll back (presumed abort): no durable decision,
                # the group was never acknowledged anywhere.
                index += 1
                continue
            if isinstance(decoded, list):
                # One-line commit group: atomic by construction.
                for entry in decoded:
                    yield entry
                index += 1
                continue
            # Legacy batch header: the next `decoded` lines form one
            # atomic group.
            group_end = index + 1 + decoded
            if group_end > len(lines):
                # Crash mid-batch: the group's sync never happened, so
                # nothing in it was acked. Discard it whole.
                return
            group: List[Entry] = []
            for j in range(index + 1, group_end):
                try:
                    member = decode_at(j)
                except CorruptionError:
                    member = None
                if not isinstance(member, Entry):
                    if tail_is_torn(j):
                        return
                    raise CorruptionError(
                        "WAL batch group corrupted mid-file",
                        path=path,
                        record_index=j,
                        byte_offset=offsets[j],
                    )
                group.append(member)
            for entry in group:
                yield entry
            index = group_end


#: Canonical file name of a store's coordinator decision log (it lives
#: beside the store manifest in the WAL directory).
TXN_LOG_NAME = "txn.log"

#: Decision codes recorded by the coordinator.
TXN_COMMIT = "c"
TXN_ABORT = "a"


class TxnDecisionLog:
    """Coordinator journal for cross-shard two-phase commits.

    One line per decided transaction — ``crc,{"x":txn_id,"d":"c"|"a"}``
    — appended *after* every participant shard's PREPARE record is
    durable and *before* any shard applies its sub-batch. That ordering
    is the whole protocol: recovery replays this log first, then hands
    the committed-transaction set to each shard's WAL replay, which
    rolls a prepared group forward exactly when a durable COMMIT
    decision exists and rolls it back otherwise (presumed abort). A
    torn decision record therefore aborts its transaction — the crash
    happened inside the decision write, so no shard can have applied
    anything yet.

    The log is append-only and tiny (one short line per *multi-shard*
    batch; single-shard batches never touch it), so it is never
    truncated or rotated.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self._path = path
        self._fsync = fsync
        self._decisions = self.replay(path)
        self._next_txn = (
            max(self._decisions, default=0) + 1 if self._decisions else 1
        )
        self._file = open(path, "a", encoding="utf-8", buffering=1)
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    def next_txn_id(self) -> int:
        """Allocate a fresh transaction id (caller holds the store's
        transaction lock, so allocation needs no lock of its own)."""
        txn_id = self._next_txn
        self._next_txn = txn_id + 1
        return txn_id

    def append(self, txn_id: int, decision: str) -> None:
        """Durably record the coordinator's verdict for ``txn_id``.

        The write is the transaction's commit point: once this record
        survives a crash, recovery rolls the transaction forward; a
        crash before (or tearing) it rolls the transaction back.
        """
        if self._closed:
            raise ClosedError("txn decision log is closed")
        if decision not in (TXN_COMMIT, TXN_ABORT):
            raise ValueError(f"unknown txn decision {decision!r}")
        payload = json.dumps(
            {"x": txn_id, "d": decision}, separators=(",", ":")
        )
        record = f"{zlib.crc32(payload.encode('utf-8')):08x},{payload}\n"
        fault_point("txn.decide.start", path=self._path)
        self._file.write(record)
        fault_point(
            "txn.decide",
            path=self._path,
            tail_bytes=len(record),
            handle=self._file,
        )
        try:
            self._file.flush()
            if self._fsync:
                _datasync(self._file.fileno())
        except OSError as exc:
            raise DurabilityError(
                f"txn decision log sync failed ({self._path})"
            ) from exc
        self._decisions[txn_id] = decision

    def decision(self, txn_id: int) -> Optional[str]:
        return self._decisions.get(txn_id)

    def close(self) -> None:
        """Close the backing file. Idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None  # type: ignore[assignment]
        self._closed = True

    @staticmethod
    def replay(path: str) -> "dict[int, str]":
        """Recover ``{txn_id: decision}`` from a decision log.

        A torn final record is the signature of a crash mid-decision and
        means that transaction aborted — it is simply absent from the
        result. Corruption followed by a valid record raises
        :class:`~repro.errors.CorruptionError`, like WAL replay.
        """
        decisions: "dict[int, str]" = {}
        if not os.path.exists(path):
            return decisions
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()

        def decode(index: int) -> "tuple[int, str]":
            crc_hex, sep, payload = lines[index].rstrip("\n").partition(",")
            try:
                expected = int(crc_hex, 16) if sep else None
            except ValueError:
                expected = None
            if expected is None or (
                zlib.crc32(payload.encode("utf-8")) != expected
            ):
                raise CorruptionError(
                    "txn decision record failed checksum",
                    path=path,
                    record_index=index,
                )
            try:
                fields = json.loads(payload)
                return int(fields["x"]), str(fields["d"])
            except (ValueError, KeyError, TypeError) as exc:
                raise CorruptionError(
                    "txn decision record failed to decode",
                    path=path,
                    record_index=index,
                ) from exc

        for index in range(len(lines)):
            try:
                txn_id, verdict = decode(index)
            except CorruptionError:
                for j in range(index + 1, len(lines)):
                    try:
                        decode(j)
                    except CorruptionError:
                        continue
                    raise  # valid record after the damage: not a torn tail
                return decisions
            decisions[txn_id] = verdict
        return decisions
