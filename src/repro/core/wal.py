"""Write-ahead log: durability for the memory buffer.

Batched ingestion (§2.1.1-A) keeps the newest entries only in memory, so
every production LSM engine pairs the buffer with a write-ahead log. This
WAL appends one record per external write, charges the simulated device for
sequential log pages (so write amplification accounts for the log), and can
optionally mirror records to a real file for crash-recovery tests.

File format (one record per line)::

    <crc32 hex>,<json payload>\n

Recovery tolerates a torn final record (a crash mid-append) but treats any
earlier corruption as fatal, mirroring the usual WAL contract.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Iterator, List, Optional

from ..errors import ClosedError, CorruptionError
from ..storage.disk import SimulatedDisk
from .entry import Entry, EntryKind


def _encode(entry: Entry) -> str:
    payload = json.dumps(
        {
            "k": entry.key,
            "v": entry.value,
            "s": entry.seqno,
            "t": int(entry.kind),
            "u": entry.stamp_us,
        },
        separators=(",", ":"),
    )
    crc = zlib.crc32(payload.encode("utf-8"))
    return f"{crc:08x},{payload}\n"


def _decode(line: str) -> Entry:
    crc_hex, _sep, payload = line.rstrip("\n").partition(",")
    if not _sep:
        raise CorruptionError("WAL record missing checksum separator")
    try:
        expected = int(crc_hex, 16)
    except ValueError as exc:
        raise CorruptionError("WAL record has malformed checksum") from exc
    if zlib.crc32(payload.encode("utf-8")) != expected:
        raise CorruptionError("WAL record failed checksum")
    try:
        fields = json.loads(payload)
        return Entry(
            key=fields["k"],
            value=fields["v"],
            seqno=fields["s"],
            kind=EntryKind(fields["t"]),
            stamp_us=fields.get("u", 0.0),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptionError("WAL record failed to decode") from exc


class WriteAheadLog:
    """Sequential log of not-yet-flushed entries.

    Args:
        disk: Simulated device charged for log pages as records accumulate.
            Appends are buffered: a page write is charged each time the
            pending bytes cross a page boundary, modeling group commit.
        path: Optional real file to mirror records into, enabling
            :meth:`replay` after a simulated crash. ``None`` keeps the log
            purely in memory (the common case for experiments).
        fsync: When mirroring to a real file, also ``os.fsync`` it on
            every sync. This is the durability cost group commit exists
            to amortize: one fsync per :meth:`append_batch` instead of
            one per write.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        path: Optional[str] = None,
        fsync: bool = False,
    ) -> None:
        self._disk = disk
        self._path = path
        self._fsync = fsync
        self._pending: List[Entry] = []
        self._unaccounted_bytes = 0
        self._closed = False
        self._file = open(path, "a", encoding="utf-8") if path else None
        #: File flushes performed so far (0 for in-memory logs). One per
        #: :meth:`append`, but only one per :meth:`append_batch` — the
        #: observable benefit of group commit.
        self.sync_count = 0

    @property
    def pending_entries(self) -> List[Entry]:
        """Entries appended since the last :meth:`reset` (oldest first)."""
        return list(self._pending)

    def append(self, entry: Entry) -> None:
        """Durably record one entry before it enters the memtable."""
        if self._closed:
            raise ClosedError("WAL is closed")
        record = _encode(entry)
        self._pending.append(entry)
        self._unaccounted_bytes += len(record)
        page = self._disk.page_size
        while self._unaccounted_bytes >= page:
            self._disk.write(page, cause="wal")
            self._unaccounted_bytes -= page
        if self._file is not None:
            self._file.write(record)
            self._sync()

    def append_batch(self, entries: List[Entry]) -> None:
        """Durably record several entries with a single log flush.

        The group-commit primitive: all records are encoded and written as
        one contiguous burst, and the backing file (when present) is
        flushed exactly once, so N concurrent writers coalesced into one
        batch pay one sync instead of N. Device accounting is identical to
        appending the entries one by one — the log is sequential either
        way; only the sync count changes.
        """
        if self._closed:
            raise ClosedError("WAL is closed")
        if not entries:
            return
        records = [_encode(entry) for entry in entries]
        self._pending.extend(entries)
        self._unaccounted_bytes += sum(len(record) for record in records)
        page = self._disk.page_size
        while self._unaccounted_bytes >= page:
            self._disk.write(page, cause="wal")
            self._unaccounted_bytes -= page
        if self._file is not None:
            self._file.write("".join(records))
            self._sync()

    def _sync(self) -> None:
        """One log sync: flush (and optionally fsync) the backing file."""
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self.sync_count += 1

    def reset(self) -> None:
        """Discard the log after its entries were flushed to an SSTable."""
        if self._closed:
            raise ClosedError("WAL is closed")
        self._pending.clear()
        self._unaccounted_bytes = 0
        if self._file is not None and self._path is not None:
            self._file.close()
            self._file = open(self._path, "w", encoding="utf-8")

    def close(self) -> None:
        """Close the backing file, if any. Idempotent."""
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    @staticmethod
    def replay(path: str) -> Iterator[Entry]:
        """Yield the entries recorded in a WAL file, oldest first.

        A torn (unparseable) *final* record is skipped — that is the normal
        signature of a crash mid-append. Corruption anywhere else raises
        :class:`~repro.errors.CorruptionError`.
        """
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            try:
                yield _decode(line)
            except CorruptionError:
                if index == len(lines) - 1:
                    return
                raise
