"""Sorted-string tables: the immutable on-disk files of the tree (§2.1.1-C).

An SSTable holds a sorted, key-unique slice of a run, split into fixed-size
data blocks. Every table carries its own auxiliary structures:

* a :class:`~repro.core.fence.FenceIndex` over block key bounds (§2.1.3),
* an optional per-table Bloom filter sized by the level's bits/key budget
  (§2.1.3; Monkey varies this budget per level),
* summary statistics (entry/tombstone counts, age of oldest tombstone) that
  drive compaction picking (§2.2.3) and Lethe TTL triggers (§2.3.3).

Tables are immutable: "modifications to an entry entail re-writing of the
corresponding file anew" — compactions build new tables and retire old ones.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..filters.bloom import BloomFilter, Digest, key_digest
from ..storage.block_cache import BlockCache, HeatTracker
from ..storage.disk import SimulatedDisk
from .entry import Entry
from .fence import BlockBounds, FenceIndex
from .range_tombstone import RangeTombstone, max_covering_seqno
from .stats import TreeStats

_table_ids = itertools.count(1)


def reset_table_ids(start: int = 1) -> None:
    """Restart the process-global table-id counter (crash-simulation hook).

    Checkpoint filenames derive from table ids, and a real process
    restart resets the counter — so crash harnesses that simulate many
    boots inside one process call this before each simulated boot to
    keep runs byte-for-byte reproducible.
    """
    global _table_ids
    _table_ids = itertools.count(start)


@dataclass
class ReadContext:
    """Everything a read needs: the device, caches, and stat counters.

    Bundled so that deep call chains (tree -> level -> run -> table) stay
    explicit without six positional arguments at every hop.
    """

    disk: SimulatedDisk
    cache: Optional[BlockCache] = None
    heat: Optional[HeatTracker] = None
    stats: Optional[TreeStats] = None
    cause: str = "get"

    def _read_block(self, table: "SSTable", block_index: int) -> None:
        """Fetch one data block, through the cache when present."""
        block = table.blocks[block_index]
        block_id = (table.table_id, block_index)
        if self.cache is not None and self.cache.probe(block_id):
            if self.stats is not None:
                self.stats.blocks_from_cache += 1
        else:
            self.disk.read(block.nbytes, self.cause)
            if self.stats is not None:
                self.stats.blocks_from_disk += 1
            if self.cache is not None:
                self.cache.insert(block_id, block.nbytes)
        if self.heat is not None:
            self.heat.record_access(block.first_key, block.last_key)
        table.last_access_us = self.disk.now_us


class Block:
    """One data block: a contiguous, sorted slice of a table's entries."""

    __slots__ = ("entries", "nbytes", "_keys")

    def __init__(
        self,
        entries: Sequence[Entry],
        nbytes: Optional[int] = None,
        keys: Optional[List[str]] = None,
    ) -> None:
        """``nbytes``/``keys`` may be precomputed by the caller (the
        table builder already has both) to skip a second pass here."""
        if not entries:
            raise ValueError("a block holds at least one entry")
        self.entries = list(entries)
        self.nbytes = (
            sum(entry.size for entry in self.entries)
            if nbytes is None
            else nbytes
        )
        self._keys = (
            [entry.key for entry in self.entries] if keys is None else keys
        )

    @property
    def first_key(self) -> str:
        """Smallest key in the block."""
        return self.entries[0].key

    @property
    def last_key(self) -> str:
        """Largest key in the block."""
        return self.entries[-1].key

    def find(self, key: str) -> Optional[Entry]:
        """Binary-search the block for ``key``."""
        pos = bisect.bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return self.entries[pos]
        return None


class SSTable:
    """An immutable sorted file with fence pointers and a Bloom filter.

    Build tables with :meth:`build` (which charges the flush/compaction
    write to the simulated disk) rather than the constructor.
    """

    def __init__(
        self,
        blocks: List[Block],
        fence: Optional[FenceIndex],
        bloom: Optional[BloomFilter],
        created_us: float,
        range_tombstones: Optional[List[RangeTombstone]] = None,
    ) -> None:
        if not blocks and not range_tombstones:
            raise ValueError(
                "an SSTable holds at least one block or range tombstone"
            )
        self.table_id = next(_table_ids)
        self.blocks = blocks
        self.fence = fence
        self.bloom = bloom
        #: Range-deletion metadata (the range-del block, §2.3.3): consulted
        #: before point data, replicated with the table through compactions.
        self.range_tombstones: List[RangeTombstone] = list(
            range_tombstones or []
        )
        self.created_us = created_us
        #: Simulated time of the most recent block read from this table;
        #: drives the "coldest" compaction picker (§2.2.3).
        self.last_access_us = created_us
        if blocks:
            self.min_key = blocks[0].first_key
            self.max_key = blocks[-1].last_key
        else:
            # A tombstone-only carrier file: its key range is its spans'.
            self.min_key = min(t.lo for t in self.range_tombstones)
            self.max_key = max(t.hi for t in self.range_tombstones)
        self.entry_count = sum(len(block.entries) for block in blocks)
        self.data_bytes = sum(block.nbytes for block in blocks) + sum(
            tombstone.size for tombstone in self.range_tombstones
        )
        self.tombstone_count = sum(
            1
            for block in blocks
            for entry in block.entries
            if entry.is_tombstone
        )
        tombstone_stamps = [
            entry.stamp_us
            for block in blocks
            for entry in block.entries
            if entry.is_tombstone
        ]
        tombstone_stamps.extend(t.stamp_us for t in self.range_tombstones)
        #: Creation stamp of the oldest (point or range) tombstone still in
        #: this file, or ``None`` when it holds none (drives Lethe TTL —
        #: the TTL therefore bounds range-delete persistence too, §2.3.3).
        self.oldest_tombstone_us: Optional[float] = (
            min(tombstone_stamps) if tombstone_stamps else None
        )

    @classmethod
    def build(
        cls,
        entries: Sequence[Entry],
        disk: SimulatedDisk,
        block_bytes: int = 4096,
        fence_pointers: bool = True,
        filter_bits_per_key: float = 10.0,
        cause: str = "flush",
        charge_io: bool = True,
        range_tombstones: Optional[List[RangeTombstone]] = None,
    ) -> "SSTable":
        """Materialize a table from sorted, key-unique entries.

        Charges the device with one sequential write of the table's payload
        under the given ``cause`` tag (``flush`` or ``compaction``), unless
        ``charge_io`` is false (used when *restoring* already-persistent
        tables from a checkpoint).

        Raises:
            ValueError: If ``entries`` is unsorted or has duplicate keys —
                a sorted run never contains either — or if both ``entries``
                and ``range_tombstones`` are empty.
        """
        if not entries and not range_tombstones:
            raise ValueError("cannot build an empty SSTable")
        # One pass each for keys and charged sizes; the block splitter,
        # the Block constructors, the fence index, and the Bloom filter
        # all reuse them instead of re-deriving per entry.
        keys = [entry.key for entry in entries]
        for left, right in zip(keys, keys[1:]):
            if left >= right:
                raise ValueError("entries must be strictly sorted by key")
        sizes = [entry.size for entry in entries]

        blocks: List[Block] = []
        start = 0
        current_bytes = 0
        for index, size in enumerate(sizes):
            if index > start and current_bytes + size > block_bytes:
                blocks.append(
                    Block(
                        entries[start:index],
                        current_bytes,
                        keys[start:index],
                    )
                )
                start = index
                current_bytes = 0
            current_bytes += size
        if start < len(sizes):
            blocks.append(Block(entries[start:], current_bytes, keys[start:]))

        fence = None
        if fence_pointers:
            fence = FenceIndex(
                [BlockBounds(blk.first_key, blk.last_key) for blk in blocks]
            )
        bloom = BloomFilter.for_keys(keys, filter_bits_per_key)
        table = cls(
            blocks,
            fence,
            bloom,
            created_us=disk.now_us,
            range_tombstones=range_tombstones,
        )
        if charge_io:
            disk.write(table.data_bytes, cause)
        return table

    def __len__(self) -> int:
        return self.entry_count

    def __repr__(self) -> str:
        return (
            f"SSTable(id={self.table_id}, [{self.min_key!r}..{self.max_key!r}], "
            f"entries={self.entry_count}, bytes={self.data_bytes})"
        )

    @property
    def effective_min_key(self) -> str:
        """Smallest key the table *affects*: point data plus tombstone
        spans. Compaction overlap uses effective ranges so a newer range
        tombstone can never sink below older data it covers."""
        candidates = [self.min_key] + [t.lo for t in self.range_tombstones]
        return min(candidates)

    @property
    def effective_max_key(self) -> str:
        """Largest key the table affects (see :attr:`effective_min_key`)."""
        candidates = [self.max_key] + [t.hi for t in self.range_tombstones]
        return max(candidates)

    def key_range_overlaps(self, lo: str, hi: str) -> bool:
        """Whether the table's *effective* range intersects ``[lo, hi]``."""
        return self.effective_min_key <= hi and lo <= self.effective_max_key

    def overlaps_table(self, other: "SSTable") -> bool:
        """Whether two tables' effective key ranges intersect."""
        return self.key_range_overlaps(
            other.effective_min_key, other.effective_max_key
        )

    def covering_tombstone_seqno(self, key: str) -> int:
        """Newest attached range tombstone covering ``key`` (-1 if none).

        An in-memory metadata check — like filter probes, it costs no I/O.
        """
        return max_covering_seqno(self.range_tombstones, key)

    def get(
        self, key: str, ctx: ReadContext, digest: Optional[Digest] = None
    ) -> Optional[Entry]:
        """Point lookup inside this table, charging I/O as it goes.

        The probe order mirrors a real engine (§2.1.3): key-range check
        (free), Bloom filter (in-memory), fence pointers (in-memory), then
        at most one data block from cache or disk. Without fence pointers
        the lookup must fetch blocks sequentially until the key's position
        is passed — the superfluous I/O experiment E4 quantifies.
        """
        stats = ctx.stats
        if key < self.min_key or key > self.max_key:
            return None
        if self.bloom is not None:
            if digest is None:
                digest = key_digest(key)
            if stats is not None:
                stats.filter_probes += 1
            if not self.bloom.may_contain_digest(digest):
                if stats is not None:
                    stats.filter_negatives += 1
                return None

        if self.fence is not None:
            block_index = self.fence.locate(key)
            if block_index is None:
                # Key falls in a gap between blocks: fence pointers answer
                # without any disk access, but the Bloom filter said maybe.
                if stats is not None:
                    stats.fence_misses += 1
                    if self.bloom is not None:
                        stats.filter_false_positives += 1
                return None
            ctx._read_block(self, block_index)
            found = self.blocks[block_index].find(key)
        else:
            found = None
            for block_index, block in enumerate(self.blocks):
                ctx._read_block(self, block_index)
                if block.last_key >= key:
                    found = block.find(key)
                    break

        if found is None and self.bloom is not None and stats is not None:
            stats.filter_false_positives += 1
        return found

    def iter_entries(self) -> Iterator[Entry]:
        """All entries in key order, without charging I/O (compaction and
        flush charge reads explicitly at the job level)."""
        for block in self.blocks:
            yield from block.entries

    def iter_range(self, lo: str, hi: str, ctx: ReadContext) -> Iterator[Entry]:
        """Entries with ``lo <= key < hi``, charging block reads."""
        if lo >= hi:
            return
        if self.fence is not None:
            start, stop = self.fence.overlap(lo, hi)
            block_indexes = range(start, stop)
        else:
            block_indexes = range(len(self.blocks))
        for block_index in block_indexes:
            block = self.blocks[block_index]
            if block.last_key < lo:
                continue
            if block.first_key >= hi:
                break
            ctx._read_block(self, block_index)
            for entry in block.entries:
                if entry.key >= hi:
                    return
                if entry.key >= lo:
                    yield entry
