"""Tuning knobs for the LSM engine.

The tutorial stresses that "commercial LSM-engines expose hundreds of tuning
knobs" (§2.3) and that these knobs *are* the design space. This module
gathers every knob the engine understands into one validated, immutable
:class:`LSMConfig`. Each field corresponds to a design decision discussed in
the paper; the reference to the relevant section is given inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..errors import ConfigError

#: Recognized memory-buffer implementations (§2.2.1; RocksDB's memtable
#: choices: vector, skiplist, hash-skiplist, hash-linkedlist).
MEMTABLE_KINDS = ("vector", "skiplist", "hash_skiplist", "hash_linkedlist")

#: Recognized disk data layouts (§2.1.2 and §2.2.2).
LAYOUT_KINDS = ("leveling", "tiering", "lazy_leveling", "hybrid", "bush")

#: Recognized compaction granularities (§2.2.3-§2.2.4): compact a whole
#: level at once (AsterixDB-style) or one file at a time (partial).
GRANULARITY_KINDS = ("level", "file")

#: Recognized victim-file picking policies for partial compaction (§2.2.3).
PICKER_KINDS = (
    "round_robin",
    "least_overlap",
    "most_tombstones",
    "coldest",
    "oldest",
)

#: Recognized per-level Bloom-filter memory allocation schemes (§2.1.3).
FILTER_ALLOCATION_KINDS = ("none", "uniform", "monkey")


@dataclass(frozen=True)
class LSMConfig:
    """Immutable engine configuration.

    Attributes:
        buffer_size_bytes: Capacity of one memory buffer before it is rotated
            and flushed (§2.1.1-A). Larger buffers trade memory for fewer,
            bigger flushes.
        num_buffers: How many buffers may exist at once (one active plus
            immutable ones awaiting flush). More buffers absorb ingestion
            bursts without stalling (§2.2.1).
        memtable_kind: Buffer implementation, one of :data:`MEMTABLE_KINDS`.
        size_ratio: Growth factor ``T`` between adjacent level capacities
            (§2.1.1-D). ``T`` is the primary read-write tradeoff knob (§2.3.1).
        layout: Disk data layout, one of :data:`LAYOUT_KINDS`:

            * ``leveling`` — ≤1 run per level (LevelDB-style).
            * ``tiering`` — up to ``T`` runs per level (Cassandra-style).
            * ``lazy_leveling`` — tiered intermediate levels, leveled last
              level (Dostoevsky, §2.2.2).
            * ``hybrid`` — tiered first ``hybrid_tiered_levels`` levels,
              leveled rest (RocksDB default shape, §2.2.2).
            * ``bush`` — run capacity doubles with depth, last level leveled
              (LSM-bush-style continuum point, §2.3.1).
        hybrid_tiered_levels: For ``layout="hybrid"``, how many shallow
            levels keep a tiered layout.
        level0_run_limit: Number of runs allowed in Level 0 (the flush
            target) before ingestion stalls waiting on compaction. Models
            RocksDB's L0 file trigger / stall knobs (§2.2.3).
        granularity: Compaction granularity, one of
            :data:`GRANULARITY_KINDS`.
        picker: Victim-selection policy under partial (``file``) granularity,
            one of :data:`PICKER_KINDS` (§2.2.3).
        target_file_bytes: Maximum SSTable size; leveled runs are partitioned
            into files of about this size so partial compaction has units to
            pick from (§2.2.3).
        block_bytes: Data-block size inside an SSTable; the unit of fence
            pointers and of block-cache residency (§2.1.3).
        fence_pointers: Whether per-block fence pointers are built (§2.1.3).
            Disabling them exists purely so experiment E4 can measure their
            benefit.
        filter_bits_per_key: Bloom-filter budget in bits per key. ``0``
            disables filters.
        filter_allocation: How the filter budget is spread across levels,
            one of :data:`FILTER_ALLOCATION_KINDS`; ``monkey`` applies the
            Monkey-optimal allocation (§2.1.3).
        block_cache_bytes: Capacity of the shared block cache; ``0`` disables
            caching (§2.1.3).
        cache_prefetch: Enable the Leaper-style hot-range prefetch after
            compactions (§2.1.3).
        tombstone_ttl_us: Lethe-style bound: a persistence deadline for
            tombstones. When positive, compactions are also triggered by
            tombstones older than the TTL (§2.3.3).
        max_levels: Safety cap on tree depth.
        seed: Seed for any randomized tie-breaking, for reproducibility.
        background_mode: Run flushes and compactions on background worker
            threads (§2.1.2, §2.2.3) instead of charging them to the
            triggering write. The default keeps the engine synchronous so
            experiments stay deterministic; background mode trades that
            determinism for real SILK-style asynchrony with write-stall
            backpressure (see :mod:`repro.concurrency`).
        flush_threads: Background flush workers (``background_mode`` only).
        compaction_threads: Background compaction workers
            (``background_mode`` only). Disjoint-level jobs run in
            parallel; flushes and L0→L1 jobs take priority (SILK, §2.2.3).
        slowdown_sleep_us: Wall-clock delay injected per write while
            Level 0 is at its run limit but below the stop trigger
            (RocksDB's slowdown trigger, §2.2.3). ``0`` disables the
            slowdown; writes then only block at the hard stop.
        wal_fsync: ``os.fsync`` the real WAL file on every commit (only
            meaningful when the tree is given a ``wal_dir``). This is the
            durability cost that group commit
            (:meth:`~repro.core.wal.WriteAheadLog.append_batch`)
            amortizes: one sync per batch instead of one per write.
        wal_preserve_segments: Keep flushed WAL segment files on disk
            instead of deleting them at flush time (only meaningful with
            a ``wal_dir``). Preserved segments make recovery independent
            of flush durability — a crash *during or after* a flush can
            still replay the segment — at the cost of unbounded log
            growth until a checkpoint
            (:func:`~repro.storage.persistence.checkpoint`) prunes the
            segments it covers. The crash-consistency sweep runs with
            this on.
    """

    buffer_size_bytes: int = 64 * 1024
    num_buffers: int = 2
    memtable_kind: str = "skiplist"
    size_ratio: int = 4
    layout: str = "leveling"
    hybrid_tiered_levels: int = 1
    level0_run_limit: int = 4
    granularity: str = "file"
    picker: str = "least_overlap"
    target_file_bytes: int = 16 * 1024
    block_bytes: int = 4096
    fence_pointers: bool = True
    filter_bits_per_key: float = 10.0
    filter_allocation: str = "uniform"
    block_cache_bytes: int = 0
    cache_prefetch: bool = False
    tombstone_ttl_us: float = 0.0
    max_levels: int = 16
    seed: int = 7
    background_mode: bool = False
    flush_threads: int = 1
    compaction_threads: int = 1
    slowdown_sleep_us: float = 500.0
    wal_fsync: bool = False
    wal_preserve_segments: bool = False
    extras: Tuple[Tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject invalid values *and* incoherent combinations.

        Called automatically at construction and again by
        :class:`~repro.core.tree.LSMTree` before it wires components
        together, so a config that was built via ``__new__``/pickling or
        mutated through ``object.__setattr__`` still cannot reach the
        engine. Raises :class:`~repro.errors.ConfigError` with an
        actionable message naming the offending knob(s).
        """
        if self.buffer_size_bytes <= 0:
            raise ConfigError("buffer_size_bytes must be positive")
        if self.num_buffers < 1:
            raise ConfigError("num_buffers must be at least 1")
        if self.memtable_kind not in MEMTABLE_KINDS:
            raise ConfigError(
                f"unknown memtable_kind {self.memtable_kind!r}; "
                f"expected one of {MEMTABLE_KINDS}"
            )
        if self.size_ratio < 2:
            raise ConfigError("size_ratio must be at least 2")
        if self.layout not in LAYOUT_KINDS:
            raise ConfigError(
                f"unknown layout {self.layout!r}; expected one of {LAYOUT_KINDS}"
            )
        if self.hybrid_tiered_levels < 0:
            raise ConfigError("hybrid_tiered_levels must be non-negative")
        if self.level0_run_limit < 1:
            raise ConfigError("level0_run_limit must be at least 1")
        if self.granularity not in GRANULARITY_KINDS:
            raise ConfigError(
                f"unknown granularity {self.granularity!r}; "
                f"expected one of {GRANULARITY_KINDS}"
            )
        if self.picker not in PICKER_KINDS:
            raise ConfigError(
                f"unknown picker {self.picker!r}; expected one of {PICKER_KINDS}"
            )
        if self.target_file_bytes <= 0:
            raise ConfigError("target_file_bytes must be positive")
        if self.block_bytes <= 0:
            raise ConfigError("block_bytes must be positive")
        if self.filter_bits_per_key < 0:
            raise ConfigError("filter_bits_per_key must be non-negative")
        if self.filter_allocation not in FILTER_ALLOCATION_KINDS:
            raise ConfigError(
                f"unknown filter_allocation {self.filter_allocation!r}; "
                f"expected one of {FILTER_ALLOCATION_KINDS}"
            )
        if self.block_cache_bytes < 0:
            raise ConfigError("block_cache_bytes must be non-negative")
        if self.tombstone_ttl_us < 0:
            raise ConfigError("tombstone_ttl_us must be non-negative")
        if self.max_levels < 2:
            raise ConfigError("max_levels must be at least 2")
        if self.flush_threads < 1:
            raise ConfigError("flush_threads must be at least 1")
        if self.compaction_threads < 1:
            raise ConfigError("compaction_threads must be at least 1")
        if self.slowdown_sleep_us < 0:
            raise ConfigError("slowdown_sleep_us must be non-negative")
        # -- cross-field coherence ---------------------------------------
        if self.background_mode and self.num_buffers < 2:
            raise ConfigError(
                "background_mode=True with num_buffers=1 leaves a "
                "zero-size immutable queue: every rotation would hit the "
                "write-stop trigger immediately; use num_buffers >= 2"
            )
        if self.target_file_bytes < self.block_bytes:
            raise ConfigError(
                f"target_file_bytes ({self.target_file_bytes}) smaller "
                f"than block_bytes ({self.block_bytes}) would make "
                "SSTables smaller than one data block; raise "
                "target_file_bytes or shrink block_bytes"
            )
        if self.filter_allocation == "monkey" and self.filter_bits_per_key == 0:
            raise ConfigError(
                "filter_allocation='monkey' with filter_bits_per_key=0 "
                "allocates a zero filter budget; give the filters bits or "
                "use filter_allocation='none'"
            )
        if self.cache_prefetch and self.block_cache_bytes == 0:
            raise ConfigError(
                "cache_prefetch=True needs a block cache to prefetch "
                "into; set block_cache_bytes > 0"
            )

    def with_overrides(self, **overrides: object) -> "LSMConfig":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def level_capacity_bytes(self, level_index: int) -> int:
        """Capacity assigned to on-disk level ``level_index`` (0-based).

        Capacities grow exponentially with the size ratio (§2.1.1-D):
        Level 0 holds ``level0_run_limit`` buffer-sized runs, and every
        deeper level holds ``size_ratio`` times its parent.
        """
        if level_index < 0:
            raise ValueError("level_index must be non-negative")
        if level_index == 0:
            return self.buffer_size_bytes * self.level0_run_limit
        return (
            self.buffer_size_bytes
            * self.level0_run_limit
            * self.size_ratio**level_index
        )


def rocksdb_like() -> LSMConfig:
    """The RocksDB-default-shaped point of the design space.

    Tiering in the first level, leveling in the rest (§2.2.2), partial
    compaction with least-overlap picking (§2.2.3), 10 bits/key Bloom
    filters, and a block cache.
    """
    return LSMConfig(
        layout="hybrid",
        hybrid_tiered_levels=1,
        granularity="file",
        picker="least_overlap",
        block_cache_bytes=256 * 1024,
    )


def cassandra_like() -> LSMConfig:
    """A size-tiered point of the design space (Apache Cassandra, §2.2.2)."""
    return LSMConfig(layout="tiering", granularity="level")


def leveldb_like() -> LSMConfig:
    """A purely leveled point of the design space (LevelDB, §2.1.2)."""
    return LSMConfig(layout="leveling", granularity="file", picker="round_robin")


def dostoevsky_like() -> LSMConfig:
    """Lazy leveling: tiered intermediates, leveled last level (§2.2.2)."""
    return LSMConfig(layout="lazy_leveling", granularity="level")


#: A reasonable default configuration used throughout tests and examples.
DEFAULT_CONFIG: LSMConfig = LSMConfig()
