"""Levels: capacity-bounded collections of sorted runs (§2.1.1-D).

Each on-disk level is assigned a capacity that grows exponentially with
depth. How many *runs* a level may stack before compaction is the data
layout knob: one for leveling, up to ``T`` for tiering, and anything in
between for the hybrid layouts of §2.2.2. Runs are ordered newest-first, so
point lookups "move from the most to the least recent tier" (§2.1.2).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..filters.bloom import Digest
from .entry import Entry
from .run import SortedRun
from .sstable import ReadContext


class Level:
    """One on-disk level holding zero or more sorted runs, newest first."""

    def __init__(self, index: int, capacity_bytes: int) -> None:
        if index < 0:
            raise ValueError("level index must be non-negative")
        if capacity_bytes <= 0:
            raise ValueError("level capacity must be positive")
        self.index = index
        self.capacity_bytes = capacity_bytes
        self.runs: List[SortedRun] = []

    def __repr__(self) -> str:
        return (
            f"Level({self.index}, runs={len(self.runs)}, "
            f"bytes={self.data_bytes}/{self.capacity_bytes})"
        )

    @property
    def data_bytes(self) -> int:
        """Total payload bytes across the level's runs."""
        return sum(run.data_bytes for run in self.runs)

    @property
    def entry_count(self) -> int:
        """Total entries across the level's runs."""
        return sum(run.entry_count for run in self.runs)

    @property
    def tombstone_count(self) -> int:
        """Total tombstones across the level's runs."""
        return sum(run.tombstone_count for run in self.runs)

    @property
    def run_count(self) -> int:
        """Number of sorted runs currently stacked."""
        return len(self.runs)

    @property
    def is_empty(self) -> bool:
        """Whether the level holds no data."""
        return not self.runs

    @property
    def is_over_capacity(self) -> bool:
        """Whether the level's bytes exceed its assigned capacity."""
        return self.data_bytes > self.capacity_bytes

    def add_run_newest(self, run: SortedRun) -> None:
        """Stack a run as the most recent of the level."""
        self.runs.insert(0, run)

    def add_run_oldest(self, run: SortedRun) -> None:
        """Append a run as the least recent (used when merging downward)."""
        self.runs.append(run)

    def remove_run(self, run: SortedRun) -> None:
        """Remove a specific run object from the level."""
        self.runs.remove(run)

    def get(
        self, key: str, ctx: ReadContext, digest: Optional[Digest] = None
    ) -> Optional[Entry]:
        """Point lookup across this level's runs, newest first.

        Counts every run probed in ``ctx.stats.runs_probed``; the first
        match wins because within a level newer runs shadow older ones.

        Note: this is the raw structural lookup used by unit tests and
        simple callers. The tree's read path
        (:meth:`repro.core.tree.LSMTree.get`) walks runs itself so it can
        additionally track range-tombstone shadows and collect merge
        operands across levels.
        """
        for run in self.runs:
            if ctx.stats is not None:
                ctx.stats.runs_probed += 1
            entry = run.get(key, ctx, digest)
            if entry is not None:
                return entry
        return None

    def iter_runs_newest_first(self) -> Iterator[SortedRun]:
        """Runs in recency order (index 0 is newest)."""
        return iter(self.runs)

    def runs_snapshot(self) -> List[SortedRun]:
        """A point-in-time copy of the run list, newest first.

        Runs and their SSTables are immutable once built, so copying the
        list under the tree's manifest lock yields a consistent version
        that reads can traverse while background compactions swap the live
        list (version-style snapshot isolation, §2.2.3).
        """
        return list(self.runs)

    def overlapping_run_bytes(self, lo: str, hi: str) -> int:
        """Bytes of this level's files overlapping ``[lo, hi]``.

        Used by the least-overlap compaction picker (§2.2.3).
        """
        return sum(
            table.data_bytes
            for run in self.runs
            for table in run.overlapping_tables(lo, hi)
        )
