"""Sorted runs: key-disjoint sequences of SSTables.

A *sorted run* is the unit the tutorial counts when it says compactions
"bound the number of sorted components or runs on disk" (§2.1.1-D). One run
spans one or more key-disjoint files so that partial compaction (§2.2.3) has
file-sized units to move; a leveled level holds a single multi-file run,
while a tiered level stacks several runs.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence

from ..filters.bloom import Digest
from .entry import Entry
from .range_tombstone import RangeTombstone, dedupe, max_covering_seqno
from .sstable import ReadContext, SSTable


class SortedRun:
    """An ordered collection of key-disjoint SSTables.

    Args:
        tables: Files sorted by ``min_key`` with non-overlapping ranges.

    Raises:
        ValueError: If the files overlap or are unsorted — that would make
            the run ambiguous for lookups.
    """

    def __init__(self, tables: Sequence[SSTable]) -> None:
        ordered = sorted(tables, key=lambda table: table.min_key)
        for left, right in zip(ordered, ordered[1:]):
            if left.max_key >= right.min_key:
                raise ValueError(
                    "files within a sorted run must be key-disjoint"
                )
        self.tables: List[SSTable] = list(ordered)
        self._min_keys = [table.min_key for table in self.tables]
        #: Deduplicated range tombstones across the run's files (copies of
        #: one tombstone replicate per file; identity is (lo, hi, seqno)).
        self.range_tombstones: List[RangeTombstone] = dedupe(
            tombstone
            for table in self.tables
            for tombstone in table.range_tombstones
        )

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self) -> Iterator[SSTable]:
        return iter(self.tables)

    def __repr__(self) -> str:
        return f"SortedRun(files={len(self.tables)}, bytes={self.data_bytes})"

    @property
    def data_bytes(self) -> int:
        """Total payload bytes across the run's files."""
        return sum(table.data_bytes for table in self.tables)

    @property
    def entry_count(self) -> int:
        """Total entries across the run's files."""
        return sum(table.entry_count for table in self.tables)

    @property
    def tombstone_count(self) -> int:
        """Total tombstones across the run's files."""
        return sum(table.tombstone_count for table in self.tables)

    @property
    def min_key(self) -> str:
        """Smallest point key in the run."""
        return self.tables[0].min_key if self.tables else ""

    @property
    def max_key(self) -> str:
        """Largest point key in the run."""
        return self.tables[-1].max_key if self.tables else ""

    @property
    def effective_min_key(self) -> str:
        """Smallest key the run affects, including tombstone spans."""
        return min(
            (table.effective_min_key for table in self.tables), default=""
        )

    @property
    def effective_max_key(self) -> str:
        """Largest key the run affects, including tombstone spans."""
        return max(
            (table.effective_max_key for table in self.tables), default=""
        )

    @property
    def max_seqno(self) -> int:
        """Largest sequence number in the run (its recency)."""
        return max(
            (entry.seqno for table in self.tables for entry in table.iter_entries()),
            default=-1,
        )

    def table_for(self, key: str) -> Optional[SSTable]:
        """The single file that may contain ``key``, if any."""
        pos = bisect.bisect_right(self._min_keys, key) - 1
        if pos < 0:
            return None
        table = self.tables[pos]
        if table.max_key < key:
            return None
        return table

    def get(
        self, key: str, ctx: ReadContext, digest: Optional[Digest] = None
    ) -> Optional[Entry]:
        """Point lookup: dispatch to the one candidate file."""
        table = self.table_for(key)
        if table is None:
            return None
        return table.get(key, ctx, digest)

    def covering_tombstone_seqno(self, key: str) -> int:
        """Newest run-level range tombstone covering ``key`` (-1 if none)."""
        return max_covering_seqno(self.range_tombstones, key)

    def overlapping_tables(self, lo: str, hi: str) -> List[SSTable]:
        """Files whose key range intersects ``[lo, hi]`` (inclusive)."""
        return [
            table for table in self.tables if table.key_range_overlaps(lo, hi)
        ]

    def iter_range(self, lo: str, hi: str, ctx: ReadContext) -> Iterator[Entry]:
        """Sorted entries with ``lo <= key < hi``, charging block I/O."""
        for table in self.tables:
            if table.max_key < lo:
                continue
            if table.min_key >= hi:
                break
            yield from table.iter_range(lo, hi, ctx)

    def iter_entries(self) -> Iterator[Entry]:
        """All entries in key order without charging I/O."""
        for table in self.tables:
            yield from table.iter_entries()

    def replace_tables(
        self, drop: Sequence[SSTable], add: Sequence[SSTable]
    ) -> "SortedRun":
        """A new run with ``drop`` removed and ``add`` inserted."""
        drop_ids = {table.table_id for table in drop}
        kept = [
            table for table in self.tables if table.table_id not in drop_ids
        ]
        return SortedRun(kept + list(add))
