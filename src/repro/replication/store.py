"""Per-shard primary→replica WAL shipping with automatic failover.

PR 4's degraded mode keeps N−1 shards serving after a worker death, but
the dead shard's keys are simply gone until an operator intervenes —
bench_e24 measures 0.75 post-kill write availability at 4 shards. Real
LSM deployments close that gap with log-shipping replicas: the primary
streams its committed WAL records to a warm standby, and failover
promotes the standby when the primary dies. :class:`ReplicatedStore`
implements exactly that, one replica per shard:

* **Shipping.** Every shard's primary tree gets a post-commit WAL hook
  (:meth:`~repro.core.tree.LSMTree.set_wal_commit_hook`): after a commit
  group's records are written *and* synced — i.e. with exactly the
  records the durability contract acknowledged — the hook hands the
  group to that shard's :class:`ShardReplicator`, which enqueues it on a
  bounded queue. A dedicated applier thread drains the queue into the
  replica tree via
  :meth:`~repro.core.tree.LSMTree.apply_replicated`, which journals the
  whole group with one ``append_batch`` so the replica's own recovery
  preserves the group's atomicity.

* **Sync vs async.** In ``"sync"`` mode the shipping call blocks until
  the group is durable in the *replica's* WAL, so every write the client
  sees acknowledged survives on the standby — the guarantee the
  crash-consistency sweep asserts. In ``"async"`` mode the ship returns
  as soon as the group is enqueued; the replicator tracks the
  acked-vs-applied watermark (``acked_seqno`` / ``applied_seqno`` plus
  lag in records and bytes), and a crash loses at most the groups inside
  that window. The queue bound is the documented cap on the window:
  shippers block (backpressure) rather than let lag grow without limit.

* **Failover.** When a shard is quarantined (its background workers
  died), the store promotes the replica in place: detach the hook, drain
  the replication queue into the standby, kill the old primary, and swap
  the replica in as the shard's serving tree — readers and writers
  re-route on their next operation because every shard-routed lambda
  re-reads ``self.shards[index]``. Promotion is triggered automatically
  from the operation path (a routed op that finds its shard quarantined)
  and from :meth:`check_health` (which the serving layer's ``HEALTH``
  command polls), and is available manually via :meth:`promote` for
  planned failover. The shard's :class:`~repro.shard.store.HealthState`
  is reset to healthy, so availability returns to ~1.0 — the replica has
  no replica, though: a *second* failure of the same shard degrades to
  quarantine exactly as an unreplicated store would.

* **Replica loss.** The mirror-image failure — the *replica* dies while
  the primary is fine — must not take down a healthy shard. In sync
  mode the write that observed the failure raises
  :class:`~repro.errors.ReplicationError` (it is locally durable but not
  replicated, and the caller must know); the store then detaches the
  hook and serves primary-only (``"replica-lost"``). In async mode the
  degradation is silent at the write path and surfaced through
  :meth:`replication_summary` / ``INFO``.

Failure-ordering note: the commit hook fires after the primary's WAL
sync but *before* the memtable insert, so a write that dies in
replication (sync mode) is journaled locally yet not readable until a
restart replays the log. That is deliberate maybe-semantics — an
errored write may surface later, like a timed-out write in any
distributed store — and the sweep's tracker treats it exactly that way.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, TypeVar

from ..core.config import LSMConfig
from ..core.entry import Entry, EntryKind
from ..core.merge_operator import MergeOperator
from ..core.tree import LSMTree
from ..core.wal import TXN_COMMIT, TXN_LOG_NAME, TxnDecisionLog
from ..errors import (
    ConfigError,
    CorruptionError,
    ReplicationError,
    ShardUnavailableError,
)
from ..faults.registry import fault_point
from ..shard.store import HEALTHY, MANIFEST_NAME, BatchOp, ShardedStore

_T = TypeVar("_T")

#: Replication modes: ``sync`` acks after replica-WAL durability,
#: ``async`` acks after local durability and tracks lag.
MODES = ("sync", "async")

#: Sub-directories of the store's ``wal_dir`` holding the two sides.
PRIMARY_DIR = "primary"
REPLICA_DIR = "replica"

#: Per-shard replication states beyond the configured mode.
PROMOTED = "promoted"
REPLICA_LOST = "replica-lost"


def entries_to_batch_ops(
    entries: Sequence[Entry], *, context: str = "replication"
) -> List[BatchOp]:
    """Convert committed WAL entries into wire-shippable batch ops.

    The lingua franca between a WAL commit hook and any remote applier
    (a cluster replica or a migration destination): put/delete survive
    the translation losslessly, while merge and range-delete entries are
    refused — shipping a merge operand without its base (or a range
    tombstone as point ops) would change its meaning on the other side.
    """
    converted: List[BatchOp] = []
    for entry in entries:
        if entry.kind is EntryKind.PUT:
            converted.append(("put", entry.key, entry.value))
        elif entry.kind in (EntryKind.DELETE, EntryKind.SINGLE_DELETE):
            converted.append(("delete", entry.key, None))
        else:
            raise ConfigError(
                f"{context} cannot ship {entry.kind.name} entries; "
                "use put/delete workloads on shipped shards"
            )
    return converted


class _Group:
    """One shipped commit group in flight to the replica."""

    __slots__ = ("entries", "waiter", "error")

    def __init__(self, entries: List[Entry], waiter: Optional[threading.Event]):
        self.entries = entries
        self.waiter = waiter
        self.error: Optional[BaseException] = None


class ShardReplicator:
    """Ships one shard's committed WAL groups to its replica tree.

    A bounded queue of commit groups plus one applier thread. ``ship``
    is called from the primary's post-commit hook (writer thread, under
    the shard's write mutex); the applier drains groups into the replica
    via :meth:`~repro.core.tree.LSMTree.apply_replicated`. All queue
    state is guarded by one condition variable; the watermark counters
    are read without it for introspection (single attribute reads are
    atomic enough for monitoring).

    Args:
        index: Shard number — used only for failpoint scopes and the
            applier thread name.
        replica: The standby tree groups are applied to.
        sync: Whether ``ship`` blocks until the group is applied
            (replica-WAL durable) before returning.
        capacity: Maximum *records* queued before shippers block. This
            is the async mode's documented lag window: a crash loses at
            most the queued records (plus the group being applied).
    """

    def __init__(
        self,
        index: int,
        replica: LSMTree,
        *,
        sync: bool,
        capacity: int = 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1 record")
        self.index = index
        self.replica = replica
        self.sync = sync
        self.capacity = capacity
        self._scope = f"shard-{index:02d}"
        self._queue: Deque[_Group] = deque()
        self._queued_records = 0
        self._cond = threading.Condition()
        self._stopped = False
        self._error: Optional[BaseException] = None
        #: Highest seqno the primary has acknowledged into replication.
        self.acked_seqno = -1
        #: Highest seqno durable in the replica's WAL.
        self.applied_seqno = -1
        self.shipped_records = 0
        self.shipped_bytes = 0
        self.applied_records = 0
        self.applied_bytes = 0
        self._thread = threading.Thread(
            target=self._run, name=f"repl-{index:02d}", daemon=True
        )
        self._thread.start()

    # -- primary side --------------------------------------------------------

    def ship(self, entries: List[Entry]) -> None:
        """Enqueue one committed group; in sync mode, wait for its apply.

        Raises :class:`~repro.errors.ReplicationError` if the applier has
        died or the replicator was stopped — in sync mode also if *this*
        group's apply failed. The caller's local commit is already
        durable either way.
        """
        if not entries:
            return
        fault_point("repl.ship", scope=self._scope)
        group = _Group(entries, threading.Event() if self.sync else None)
        with self._cond:
            while (
                self._queued_records >= self.capacity
                and not self._stopped
                and self._error is None
            ):
                self._cond.wait()
            if self._error is not None:
                raise ReplicationError(
                    f"shard {self.index} replica applier died"
                ) from self._error
            if self._stopped:
                raise ReplicationError(
                    f"shard {self.index} replicator is stopped"
                )
            self._queue.append(group)
            self._queued_records += len(entries)
            self.shipped_records += len(entries)
            self.shipped_bytes += sum(entry.size for entry in entries)
            self.acked_seqno = max(self.acked_seqno, entries[-1].seqno)
            self._cond.notify_all()
        if group.waiter is not None:
            group.waiter.wait()
            if group.error is not None:
                raise ReplicationError(
                    f"shard {self.index} replica apply failed"
                ) from group.error

    # -- replica side --------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if not self._queue:
                    return  # stopped and fully drained
                group = self._queue.popleft()
                self._queued_records -= len(group.entries)
                self._cond.notify_all()
            try:
                fault_point("repl.apply", scope=self._scope)
                self.replica.apply_replicated(group.entries)
                fault_point("repl.applied", scope=self._scope)
            except BaseException as exc:  # noqa: BLE001 — InjectedCrash too
                # The applier is this shard's stand-in for a replica
                # process: anything that kills it (including an injected
                # crash, a BaseException) must fail every waiter rather
                # than leave sync writers blocked forever.
                group.error = exc
                with self._cond:
                    self._error = exc
                    failed = [group] + list(self._queue)
                    self._queue.clear()
                    self._queued_records = 0
                    for pending in failed:
                        pending.error = exc
                        if pending.waiter is not None:
                            pending.waiter.set()
                    self._cond.notify_all()
                return
            with self._cond:
                self.applied_records += len(group.entries)
                self.applied_bytes += sum(
                    entry.size for entry in group.entries
                )
                self.applied_seqno = max(
                    self.applied_seqno, group.entries[-1].seqno
                )
                if group.waiter is not None:
                    group.waiter.set()

    # -- lifecycle / introspection -------------------------------------------

    def stop(self, *, drain: bool) -> None:
        """Stop the applier. ``drain=True`` applies queued groups first;
        ``drain=False`` discards them (their sync waiters are failed so
        no shipper hangs). Idempotent; safe after an applier death."""
        with self._cond:
            self._stopped = True
            if not drain and self._queue:
                error = ReplicationError(
                    f"shard {self.index} replicator stopped without drain"
                )
                for pending in self._queue:
                    pending.error = error
                    if pending.waiter is not None:
                        pending.waiter.set()
                self._queue.clear()
                self._queued_records = 0
            self._cond.notify_all()
        self._thread.join(timeout=30.0)

    @property
    def failed(self) -> bool:
        """Whether the applier has died (replica lost)."""
        return self._error is not None

    @property
    def lag_records(self) -> int:
        """Acked-but-not-yet-applied records (the async loss window)."""
        return max(0, self.shipped_records - self.applied_records)

    @property
    def lag_bytes(self) -> int:
        """Acked-but-not-yet-applied payload bytes."""
        return max(0, self.shipped_bytes - self.applied_bytes)


class ReplicatedStore(ShardedStore):
    """A :class:`ShardedStore` whose every shard has a warm standby.

    Layout under ``wal_dir``::

        wal_dir/primary/shards.json      # the primaries' routing manifest
        wal_dir/primary/shard-NN/        # each primary's WAL segments
        wal_dir/replica/shards.json      # same manifest, replica side
        wal_dir/replica/shard-NN/        # each replica's WAL segments

    The replica side is itself a valid sharded WAL directory, so after
    losing the primary disk entirely, ``ShardedStore.recover(config,
    os.path.join(wal_dir, "replica"))`` rebuilds the store from the
    standbys alone — that is the recovery path the crash-consistency
    sweep exercises.

    Args:
        num_shards / config / routing / boundaries / merge_operator:
            As for :class:`ShardedStore`.
        wal_dir: Required (replication is meaningless without durable
            logs to ship).
        mode: ``"sync"`` (default — acked implies replica-durable) or
            ``"async"`` (acked implies locally durable; replica lags by
            at most ``queue_capacity`` records).
        queue_capacity: Per-shard replication queue bound, in records.
    """

    def __init__(
        self,
        num_shards: Optional[int] = None,
        config: Optional[LSMConfig] = None,
        *,
        mode: str = "sync",
        routing: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        wal_dir: Optional[str] = None,
        merge_operator: Optional[MergeOperator] = None,
        queue_capacity: int = 1024,
        _recover: bool = False,
        _committed_txns: Optional[frozenset] = None,
    ) -> None:
        if mode not in MODES:
            raise ConfigError(f"replication mode must be one of {MODES}")
        if wal_dir is None:
            raise ConfigError("ReplicatedStore requires a wal_dir")
        primary_dir = os.path.join(wal_dir, PRIMARY_DIR)
        replica_dir = os.path.join(wal_dir, REPLICA_DIR)
        os.makedirs(primary_dir, exist_ok=True)
        os.makedirs(replica_dir, exist_ok=True)
        super().__init__(
            num_shards,
            config,
            routing=routing,
            boundaries=boundaries,
            wal_dir=primary_dir,
            merge_operator=merge_operator,
            _recover=_recover,
            _committed_txns=_committed_txns,
        )
        self.mode = mode
        self._repl_wal_dir = wal_dir
        self._replica_dir = replica_dir
        #: Completed failovers (served through ``INFO`` and ``HEALTH``).
        self.promotions = 0
        #: Serializes promote/failover decisions. Never held while
        #: acquiring a shard's write mutex (deadlock discipline: a sync
        #: shipper blocked under the write mutex may be woken by a
        #: promotion's drain).
        self._failover_lock = threading.RLock()
        #: Leaf lock for the per-shard replication state strings.
        self._repl_lock = threading.Lock()
        self._repl_state: List[str] = [mode] * self.num_shards
        replica_paths = [
            os.path.join(replica_dir, f"shard-{index:02d}")
            for index in range(self.num_shards)
        ]
        for path in replica_paths:
            os.makedirs(path, exist_ok=True)
        self._write_replica_manifest(replica_dir)
        if _recover:
            self.replicas: List[LSMTree] = [
                LSMTree.recover(config, path, merge_operator=merge_operator)
                for path in replica_paths
            ]
        else:
            self.replicas = [
                LSMTree(config, wal_dir=path, merge_operator=merge_operator)
                for path in replica_paths
            ]
        self._replicators = [
            ShardReplicator(
                index,
                replica,
                sync=(mode == "sync"),
                capacity=queue_capacity,
            )
            for index, replica in enumerate(self.replicas)
        ]
        for index, shard in enumerate(self.shards):
            shard.set_wal_commit_hook(self._make_ship_hook(index))

    def _write_replica_manifest(self, replica_dir: str) -> None:
        """Mirror the routing manifest into the replica directory.

        Same atomic tmp-write-then-rename as the primary's manifest (and
        validated the same way when it already exists), so the replica
        side is independently recoverable with identical key placement.
        """
        manifest = {
            "num_shards": self.num_shards,
            "routing": self.routing,
            "boundaries": self.boundaries,
        }
        path = os.path.join(replica_dir, MANIFEST_NAME)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                try:
                    existing = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise CorruptionError(
                        "replica shard manifest is not valid JSON",
                        path=path,
                        byte_offset=exc.pos,
                    ) from exc
            if existing != manifest:
                raise ConfigError(
                    f"{path} records a different sharding ({existing}); "
                    "the replica directory belongs to another store"
                )
            return
        blob = json.dumps(manifest)
        temporary = path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(blob)
        fault_point(
            "repl.manifest.tmp", path=temporary, tail_bytes=len(blob)
        )
        os.replace(temporary, path)
        fault_point("repl.manifest.done", path=path)

    # -- shipping ------------------------------------------------------------

    def _make_ship_hook(self, index: int) -> Callable[[List[Entry]], None]:
        def ship(entries: List[Entry]) -> None:
            try:
                self._replicators[index].ship(entries)
            except ReplicationError:
                self._replica_lost(index)
                if self.mode == "sync":
                    # The write is locally durable but not replicated;
                    # sync callers must see that.
                    raise

        return ship

    def _replica_lost(self, index: int) -> None:
        """Drop shard ``index`` to primary-only service. Idempotent.

        Called on the writer thread that observed the failure (it holds
        that shard's write mutex, so detaching the hook via
        :meth:`LSMTree.set_wal_commit_hook` re-enters the same RLock).
        A shard already promoted keeps its state — the old primary's
        hook firing once more during a promotion race is harmless.
        """
        with self._repl_lock:
            if self._repl_state[index] != self.mode:
                return
            self._repl_state[index] = REPLICA_LOST
        self.shards[index].set_wal_commit_hook(None)
        self._replicators[index].stop(drain=False)

    # -- failover ------------------------------------------------------------

    def promote(self, index: int, reason: str = "operator request") -> bool:
        """Promote shard ``index``'s replica to serving primary.

        Detaches the shipping hook, drains queued groups into the
        standby, kills the old primary, swaps the replica in as
        ``self.shards[index]``, and resets the shard's health to
        healthy. Returns ``True`` if this call performed the promotion,
        ``False`` if the shard was already promoted. Raises
        :class:`~repro.errors.ReplicationError` when there is no replica
        left to promote (``replica-lost``).

        Safe to call on a healthy shard for *planned* failover (e.g.
        rolling maintenance): writes keep succeeding throughout, because
        promotion swaps the serving tree between — never during — the
        shard-routed operations, which re-read ``self.shards[index]``.
        """
        self._check_open()
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index}")
        with self._failover_lock:
            with self._repl_lock:
                state = self._repl_state[index]
            if state == PROMOTED:
                return False
            if state == REPLICA_LOST:
                raise ReplicationError(
                    f"shard {index} has no replica to promote ({reason})"
                )
            scope = f"shard-{index:02d}"
            fault_point("repl.promote.start", scope=scope)
            old = self.shards[index]
            # Detach by direct assignment, not set_wal_commit_hook: the
            # setter takes the shard's write mutex, which a sync shipper
            # blocked on this very promotion may hold. An in-flight
            # writer can race one last ship; the stopped replicator
            # fails it and _replica_lost sees the promoted state.
            old._wal_commit_hook = None
            old._active_wal.on_commit = None
            replicator = self._replicators[index]
            replicator.stop(drain=True)
            fault_point("repl.promote.drain", scope=scope)
            old.kill()
            replica = self.replicas[index]
            self.shards[index] = replica
            with self._repl_lock:
                self._repl_state[index] = PROMOTED
            fault_point("repl.promote.done", scope=scope)
            with self._health_lock:
                health = self._health[index]
                health.state = HEALTHY
                health.reason = None
                health.since_s = time.monotonic()
            self.promotions += 1
            return True

    def _try_failover(self, index: int) -> bool:
        """Attempt automatic failover of a quarantined shard.

        Returns ``True`` when the shard is serving again (this call
        promoted, or a concurrent one already had), ``False`` when no
        standby is available.
        """
        with self._failover_lock:
            if self._health[index].healthy:
                return True
            with self._repl_lock:
                state = self._repl_state[index]
            if state in (PROMOTED, REPLICA_LOST):
                return False
            reason = self._health[index].reason or "quarantined"
            self.promote(index, reason=f"failover: {reason}")
            return True

    def _check_available(self, index: int) -> None:
        """Availability gate with failover: a quarantined shard gets one
        promotion attempt before the error surfaces."""
        if not self._health[index].healthy:
            self._try_failover(index)
        super()._check_available(index)

    def _shard_op(self, index: int, op: Callable[[], _T]) -> _T:
        """Shard-routed op with failover retry.

        The shard may die *mid-operation* (quarantined on the way out);
        promoting and retrying once turns that into a served request —
        this is what lifts post-kill availability from N−1/N to ~1.
        The op lambdas re-read ``self.shards[index]``, so the retry runs
        against the freshly promoted replica.
        """
        try:
            return super()._shard_op(index, op)
        except ShardUnavailableError:
            if not self._try_failover(index):
                raise
            return super()._shard_op(index, op)

    def check_health(self) -> Dict[str, object]:
        """Health rollup with failover: quarantined shards are promoted
        before the verdict, and a ``replication`` section is added."""
        self._check_open()
        for index, shard in enumerate(self.shards):
            if self._health[index].healthy:
                error = shard.background_error()
                if error is not None:
                    self._quarantine(index, error)
            if not self._health[index].healthy:
                self._try_failover(index)
        payload = super().check_health()
        payload["replication"] = self.replication_summary()
        return payload

    # -- introspection -------------------------------------------------------

    def replication_summary(self) -> Dict[str, object]:
        """Per-shard replication status for ``INFO`` and operators."""
        with self._repl_lock:
            states = list(self._repl_state)
        return {
            "mode": self.mode,
            "promotions": self.promotions,
            "shards": [
                {
                    "shard": index,
                    "state": states[index],
                    "lag_records": replicator.lag_records,
                    "lag_bytes": replicator.lag_bytes,
                    "acked_seqno": replicator.acked_seqno,
                    "applied_seqno": replicator.applied_seqno,
                }
                for index, replicator in enumerate(self._replicators)
            ],
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close primaries, drain replicators, close standbys.

        The replicators drain *after* the shards close: no new groups
        can ship once the primaries are closed, so the drain is bounded,
        and the standbys stay open until their appliers are joined.
        """
        if self._closed:
            return
        failure: Optional[BaseException] = None
        try:
            super().close()
        except BaseException as exc:  # noqa: BLE001 — close all sides
            failure = exc
        for replicator in self._replicators:
            replicator.stop(drain=True)
        with self._repl_lock:
            states = list(self._repl_state)
        for index, replica in enumerate(self.replicas):
            if states[index] == PROMOTED:
                continue  # promoted replicas closed as shards above
            try:
                replica.close()
            except BaseException as exc:  # noqa: BLE001
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def kill(self) -> None:
        """Crash-abandon both sides: no drains, nothing persisted."""
        if self._closed:
            return
        super().kill()
        for replicator in self._replicators:
            replicator.stop(drain=False)
        with self._repl_lock:
            states = list(self._repl_state)
        for index, replica in enumerate(self.replicas):
            if states[index] != PROMOTED:
                replica.kill()

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(  # type: ignore[override]
        cls,
        config: Optional[LSMConfig],
        wal_dir: str,
        *,
        mode: str = "sync",
        merge_operator: Optional[MergeOperator] = None,
        queue_capacity: int = 1024,
    ) -> "ReplicatedStore":
        """Rebuild primaries *and* replicas from their own WALs.

        Both sides replay independently from their ``shards.json`` +
        ``shard-NN/`` directories; replication then resumes from the
        live write stream (historical divergence between the sides —
        e.g. an async window lost in the crash — is not back-filled;
        promote the fresher side instead if that matters).

        Two-phase-commit state lives entirely on the primary side: the
        coordinator decision log (``primary/txn.log``) settles every
        PREPARE record found in the primaries' WALs, and replicas never
        see a prepare at all — groups ship only after commit, as plain
        committed groups.
        """
        path = os.path.join(wal_dir, PRIMARY_DIR, MANIFEST_NAME)
        if not os.path.exists(path):
            raise ConfigError(
                f"no {PRIMARY_DIR}/{MANIFEST_NAME} in {wal_dir}; not a "
                "replicated WAL directory"
            )
        with open(path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise CorruptionError(
                    "shard manifest is not valid JSON",
                    path=path,
                    byte_offset=exc.pos,
                ) from exc
        decisions = TxnDecisionLog.replay(
            os.path.join(wal_dir, PRIMARY_DIR, TXN_LOG_NAME)
        )
        committed = frozenset(
            txn for txn, verdict in decisions.items()
            if verdict == TXN_COMMIT
        )
        return cls(
            manifest["num_shards"],
            config,
            mode=mode,
            routing=manifest["routing"],
            boundaries=manifest["boundaries"] or None,
            wal_dir=wal_dir,
            merge_operator=merge_operator,
            queue_capacity=queue_capacity,
            _recover=True,
            _committed_txns=committed,
        )
