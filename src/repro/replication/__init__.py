"""Per-shard WAL-shipping replication with automatic failover.

See :mod:`repro.replication.store` for the design discussion;
:class:`ReplicatedStore` is the public entry point and satisfies the
same :class:`~repro.api.KVStore` protocol as the engines it wraps.
"""

from .store import ReplicatedStore, ShardReplicator

__all__ = ["ReplicatedStore", "ShardReplicator"]
