"""Benchmark harness and reporting (drives everything in benchmarks/)."""

from .harness import Harness, RunMetrics, apply_operation
from .report import format_number, format_table, print_table, ratio

__all__ = [
    "Harness",
    "RunMetrics",
    "apply_operation",
    "format_table",
    "format_number",
    "print_table",
    "ratio",
]
