"""ASCII reporting for benchmark output.

Every experiment prints one or more aligned tables through these helpers so
EXPERIMENTS.md can quote benchmark output verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_number(value: Cell) -> str:
    """Human-friendly rendering: thousands separators, trimmed floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Cell values; numbers are formatted via :func:`format_number`.
        title: Optional caption printed above the table.

    Raises:
        ValueError: If any row's width differs from the header's.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append([format_number(cell) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(header) for header in headers]))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` with surrounding blank lines."""
    print()
    print(format_table(headers, rows, title))
    print()


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup/when-wins columns (0 when undefined)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator
