"""Workload replay harness: run an operation stream against any store.

The harness accepts anything with the tree-shaped surface (``put``/``get``/
``scan``/``delete`` — :class:`~repro.core.tree.LSMTree`,
:class:`~repro.kvsep.wisckey.WiscKeyStore`,
:class:`~repro.partition.store.PartitionedStore`), replays a generated
workload, and reports the standard metric set every experiment prints:
write/read/space amplification, simulated throughput, latency percentiles,
and filter/cache effectiveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..core.stats import percentile
from ..core.tree import LSMTree
from ..storage.disk import IOCounters, SimulatedDisk
from ..workload.generator import (
    Operation,
    OpKind,
    WorkloadSpec,
    generate,
    preload_operations,
)


def apply_operation(store: object, op: Operation) -> None:
    """Dispatch one workload operation to a tree-shaped store."""
    if op.kind is OpKind.READ:
        store.get(op.key)  # type: ignore[attr-defined]
    elif op.kind in (OpKind.INSERT, OpKind.UPDATE):
        store.put(op.key, op.value)  # type: ignore[attr-defined]
    elif op.kind is OpKind.SCAN:
        store.scan(op.key, op.end_key)  # type: ignore[attr-defined]
    elif op.kind is OpKind.DELETE:
        store.delete(op.key)  # type: ignore[attr-defined]
    elif op.kind is OpKind.SINGLE_DELETE:
        single = getattr(store, "single_delete", None)
        if single is not None:
            single(op.key)
        else:
            store.delete(op.key)  # type: ignore[attr-defined]
    elif op.kind is OpKind.READ_MODIFY_WRITE:
        current = store.get(op.key)  # type: ignore[attr-defined]
        merged = (current or "") + (op.value or "")
        store.put(op.key, merged[-256:])  # type: ignore[attr-defined]
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unhandled operation kind {op.kind}")


@dataclass
class RunMetrics:
    """Everything a benchmark reports about one measured phase."""

    operations: int = 0
    user_bytes_written: int = 0
    simulated_us: float = 0.0
    io: IOCounters = field(default_factory=IOCounters)
    write_latencies_us: Dict[str, float] = field(default_factory=dict)
    read_latencies_us: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """Device bytes written per user byte in the measured phase."""
        if self.user_bytes_written == 0:
            return 0.0
        return self.io.bytes_written / self.user_bytes_written

    @property
    def throughput_kops(self) -> float:
        """Operations per simulated millisecond (kops/s of device time)."""
        if self.simulated_us <= 0:
            return 0.0
        return self.operations / (self.simulated_us / 1000.0)

    def pages_read_per_op(self) -> float:
        """Device pages read per operation in the measured phase."""
        if self.operations == 0:
            return 0.0
        return self.io.pages_read / self.operations


class Harness:
    """Replays workloads against a store over a shared simulated disk."""

    def __init__(self, store: object, disk: Optional[SimulatedDisk] = None):
        self.store = store
        self.disk = disk or getattr(store, "disk")
        if not isinstance(self.disk, SimulatedDisk):
            raise TypeError("harness needs the store's SimulatedDisk")

    def preload(self, spec: WorkloadSpec) -> None:
        """Load the initial key universe (not measured)."""
        for op in preload_operations(spec):
            apply_operation(self.store, op)

    def run(self, operations: Iterable[Operation]) -> RunMetrics:
        """Replay operations, measuring disk deltas and simulated time."""
        before = self.disk.counters.snapshot()
        started_us = self.disk.now_us
        user_bytes_before = self._user_bytes()
        tree_stats_before = self._latency_counts()

        count = 0
        for op in operations:
            apply_operation(self.store, op)
            count += 1

        metrics = RunMetrics(
            operations=count,
            user_bytes_written=self._user_bytes() - user_bytes_before,
            simulated_us=self.disk.now_us - started_us,
            io=self.disk.counters.delta(before),
        )
        self._fill_latencies(metrics, tree_stats_before)
        return metrics

    def run_spec(self, spec: WorkloadSpec, preload: bool = True) -> RunMetrics:
        """Preload (optionally) then measure the spec's operation mix."""
        if preload:
            self.preload(spec)
        return self.run(generate(spec))

    # -- store introspection ----------------------------------------------------

    def _tree(self) -> Optional[LSMTree]:
        if isinstance(self.store, LSMTree):
            return self.store
        inner = getattr(self.store, "tree", None)
        return inner if isinstance(inner, LSMTree) else None

    def _user_bytes(self) -> int:
        tree = self._tree()
        if tree is not None:
            return tree.stats.user_bytes_written
        return int(getattr(self.store, "user_bytes_written", 0))

    def _latency_counts(self) -> Dict[str, int]:
        tree = self._tree()
        if tree is None:
            return {"writes": 0, "reads": 0}
        return {
            "writes": len(tree.stats.write_latencies_us),
            "reads": len(tree.stats.read_latencies_us),
        }

    def _fill_latencies(
        self, metrics: RunMetrics, before: Dict[str, int]
    ) -> None:
        tree = self._tree()
        if tree is None:
            return
        writes = tree.stats.write_latencies_us[before["writes"] :]
        reads = tree.stats.read_latencies_us[before["reads"] :]
        metrics.write_latencies_us = {
            "p50": percentile(writes, 0.50),
            "p99": percentile(writes, 0.99),
            "p999": percentile(writes, 0.999),
        }
        metrics.read_latencies_us = {
            "p50": percentile(reads, 0.50),
            "p99": percentile(reads, 0.99),
            "p999": percentile(reads, 0.999),
        }
